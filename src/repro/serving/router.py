"""The request router: front door of the multi-process serving tier.

:class:`ProcessQueryService` is the process-pool counterpart of
:class:`~repro.workloads.service.QueryService` and keeps its external
contract: request batches in, per-request results out **in request
order**, per-request failures as structured
:class:`~repro.reliability.RequestFailure` values, and every
completed result bit-identical to the same request run through the
single-process service.  What changes is the execution substrate:

* the store is exported once into a
  :class:`~repro.serving.segments.SharedStoreSegment` (the single
  resident copy of the graph columns);
* N long-lived worker processes
  (:func:`~repro.serving.worker.worker_main`) attach it zero-copy and
  run the full engine stack with per-worker plan caches;
* the router round-robins request batches across workers over duplex
  pipes — legal *because* the per-request contract is deterministic:
  a request's cardinalities are a function of ``(graph, request)``
  alone, so placement is a pure deployment knob and the router can
  route freely (pinned by ``tests/serving/test_router.py``).

**Reliability across the process boundary** (knobs and semantics
mirror the single-process service; contract in
``docs/reliability.md``):

* ``deadline_seconds`` — each request carries its remaining budget to
  the worker (cooperative check at attempt start) *and* the router
  bounds its own wait: an expired in-flight request fails with a
  structured ``DeadlineExceededError`` immediately, and its late
  reply, if one ever arrives, is dropped.
* ``retry_policy`` — shipped to workers, which retry transient
  *in-worker* faults locally (backoff and all), exactly as the
  single-process service would.  The router itself retries only
  worker **death**: a dead worker is respawned on the same segment
  and, while the policy's ``max_attempts`` allows, the requests it
  held are resent (fault-key offset by the attempts already spent,
  so a resend is a fresh arrival, not a replay of the crash).
  Without a policy, each lost request fails with a
  :class:`~repro.reliability.WorkerCrashError`-typed failure.  Either
  way the crash is isolated: requests on other workers are untouched.
* ``max_pending`` — the same
  :class:`~repro.reliability.AdmissionController` bound as the
  single-process service, applied at ``run_batch`` admission.

The tier's native request format is the
:class:`~repro.serving.protocol.ColumnarQueryRequest`; plain
:class:`~repro.workloads.service.QueryRequest` batches are accepted
and encoded at the door.  Results are
:class:`~repro.workloads.service.QueryResult` values either way.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from time import perf_counter
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.profiling import profiler
from repro.reliability import (
    AdmissionController,
    Deadline,
    DeadlineExceededError,
    RequestFailure,
    RetryPolicy,
    WorkerCrashError,
    fault_injector,
)
from repro.serving.protocol import (
    KIND_CODES,
    ColumnarQueryRequest,
    encode_queries,
)
from repro.serving.segments import SharedStoreSegment
from repro.serving.worker import WorkerConfig, worker_main
from repro.workloads.cache import PlanCacheStats
from repro.workloads.generator import (
    WorkloadConfig,
    WorkloadGenerator,
    WorkloadReport,
)
from repro.workloads.service import QueryRequest, QueryResult

__all__ = ["ProcessQueryService"]


class _Worker:
    """One worker process + its pipe + the requests it holds."""

    def __init__(self, worker_id: int):
        self.worker_id = worker_id
        self.process = None
        self.conn = None
        self.inflight: Dict[int, "_Pending"] = {}
        self.respawns = 0
        self.idle_deaths = 0  # deaths with no requests in flight

    @property
    def alive(self) -> bool:
        return self.process is not None and self.process.is_alive()


@dataclass
class _Pending:
    """Router-side state of one in-flight request."""

    index: int  # position in the submitted batch
    submitted: Union[QueryRequest, ColumnarQueryRequest]
    enc: ColumnarQueryRequest
    deadline: Optional[Deadline]
    start: float
    attempts_spent: int = 0  # attempts burned in dead workers
    crash_resends: int = 0


class ProcessQueryService:
    """Multi-process query serving: router + worker pool + one segment.

    Parameters
    ----------
    graph:
        A :class:`~repro.graph.dynamic.DynamicAttributedGraph`, a
        :class:`~repro.graph.store.TemporalEdgeStore`, or a
        :class:`~repro.workloads.engine.GraphQueryEngine` (its store
        is exported; its in-process plan cache is *not* shared —
        workers build their own).
    num_workers:
        Worker-process count (>= 1).
    cache_memory_budget_bytes / cache_max_plans:
        Per-worker plan-cache bounds (each worker owns a cache; the
        budget is per worker, not pooled).
    batched:
        ``False`` forces per-query dispatch inside workers — the
        comparison baseline; results are identical either way.
    retry_policy / deadline_seconds / max_pending:
        The :class:`~repro.workloads.service.QueryService` reliability
        knobs, threaded across the process boundary (see module
        docstring for the split of retry responsibilities).
    start_method:
        ``multiprocessing`` start method; defaults to ``"fork"``
        where available (instant worker start) else ``"spawn"``.

    Use as a context manager (or call :meth:`close`): the service
    owns OS resources — worker processes and the shared-memory
    segment — and ``close()`` is what guarantees no segment leaks
    (pinned by ``tests/serving/test_lifecycle.py``).
    """

    def __init__(
        self,
        graph,
        *,
        num_workers: int = 2,
        cache_memory_budget_bytes: Optional[int] = None,
        cache_max_plans: Optional[int] = None,
        batched: bool = True,
        retry_policy: Optional[RetryPolicy] = None,
        deadline_seconds: Optional[float] = None,
        max_pending: Optional[int] = None,
        start_method: Optional[str] = None,
    ):
        if num_workers < 1:
            raise ValueError("num_workers must be >= 1")
        if deadline_seconds is not None and deadline_seconds <= 0:
            raise ValueError("deadline_seconds must be positive")
        self.graph, store = self._resolve(graph)
        self.num_workers = int(num_workers)
        self.cache_memory_budget_bytes = cache_memory_budget_bytes
        self.cache_max_plans = cache_max_plans
        self.batched = batched
        self.retry_policy = retry_policy
        self.deadline_seconds = deadline_seconds
        self._admission = AdmissionController(max_pending)
        import multiprocessing as mp

        if start_method is None:
            start_method = (
                "fork" if "fork" in mp.get_all_start_methods() else "spawn"
            )
        self._ctx = mp.get_context(start_method)
        self.start_method = start_method
        self._lock = threading.RLock()
        self._next_id = 0
        self._closed = False
        self.segment = SharedStoreSegment(store)
        try:
            self._workers = [
                self._spawn(i) for i in range(self.num_workers)
            ]
        except Exception:
            self.close()
            raise

    @staticmethod
    def _resolve(graph):
        """Accept graph / store / engine; return (graph, store)."""
        from repro.graph.dynamic import DynamicAttributedGraph
        from repro.graph.store import TemporalEdgeStore
        from repro.workloads.engine import GraphQueryEngine

        if isinstance(graph, GraphQueryEngine):
            graph = graph.graph
        if isinstance(graph, TemporalEdgeStore):
            graph = DynamicAttributedGraph.from_store(graph)
        return graph, graph.store

    # ------------------------------------------------------------------
    # worker lifecycle
    # ------------------------------------------------------------------
    def _worker_config(self, worker_id: int) -> WorkerConfig:
        # replicate the parent's current fault arming so chaos
        # schedules survive the process boundary (fork or spawn)
        return WorkerConfig(
            manifest=self.segment.manifest,
            worker_id=worker_id,
            cache_memory_budget_bytes=self.cache_memory_budget_bytes,
            cache_max_plans=self.cache_max_plans,
            batched=self.batched,
            retry_policy=self.retry_policy,
            fault_plans=dict(fault_injector._plans),
            fault_seed=fault_injector.seed,
            fault_enabled=fault_injector.enabled,
        )

    def _spawn(self, worker_id: int, slot: Optional[_Worker] = None) -> _Worker:
        worker = slot if slot is not None else _Worker(worker_id)
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        process = self._ctx.Process(
            target=worker_main,
            args=(self._worker_config(worker_id), child_conn),
            name=f"query-worker-{worker_id}",
            daemon=True,
        )
        process.start()
        child_conn.close()  # the worker holds its own end
        worker.process = process
        worker.conn = parent_conn
        worker.inflight = {}
        return worker

    def _reap(self, worker: _Worker) -> Optional[int]:
        """Tear down a dead worker's handles; returns its exit code."""
        exit_code = None
        if worker.process is not None:
            worker.process.join(timeout=1.0)
            exit_code = worker.process.exitcode
            if worker.process.is_alive():  # pragma: no cover - stuck
                worker.process.terminate()
                worker.process.join(timeout=1.0)
        if worker.conn is not None:
            try:
                worker.conn.close()
            except Exception:
                pass
        worker.process = None
        worker.conn = None
        return exit_code

    # ------------------------------------------------------------------
    # request plumbing
    # ------------------------------------------------------------------
    @staticmethod
    def _encode(
        request: Union[QueryRequest, ColumnarQueryRequest]
    ) -> ColumnarQueryRequest:
        if isinstance(request, ColumnarQueryRequest):
            return request
        return encode_queries(request.queries)

    def _send(self, worker: _Worker, req_id: int, state: _Pending) -> None:
        budget = (
            None
            if state.deadline is None
            else max(state.deadline.remaining(), 1e-9)
        )
        # register before sending: if the pipe is already broken the
        # crash handler must see this request among the worker's losses
        worker.inflight[req_id] = state
        if worker.conn is None:
            raise BrokenPipeError("worker is down")
        worker.conn.send(
            ("run", req_id, state.enc.columns(), budget,
             state.attempts_spent)
        )

    def _failure_result(
        self, state: _Pending, failure: RequestFailure
    ) -> QueryResult:
        return QueryResult(
            request=state.submitted,
            cardinalities=None,
            seconds=perf_counter() - state.start,
            seconds_by_kind={},
            attempts=max(failure.attempts, 1),
            error=failure,
        )

    def _ok_result(self, state: _Pending, reply: Tuple) -> QueryResult:
        _, _, cards, by_kind, seconds, attempts, degraded = reply
        return QueryResult(
            request=state.submitted,
            cardinalities=np.asarray(cards, dtype=np.int64),
            seconds=perf_counter() - state.start,
            seconds_by_kind=dict(by_kind),
            attempts=state.attempts_spent + int(attempts),
            degraded_kinds=frozenset(degraded),
        )

    def _handle_crash(
        self,
        worker: _Worker,
        results: List[Optional[QueryResult]],
        outstanding: Dict[int, _Pending],
    ) -> None:
        """Respawn a dead worker; retry or fail the requests it held.

        A worker that keeps dying with *nothing* in flight is failing
        at startup (e.g. the segment vanished) — after a few such
        deaths it is left down instead of respawned forever.  Deaths
        with requests in flight always respawn: those are the crashes
        the tier exists to survive.
        """
        exit_code = self._reap(worker)
        lost = worker.inflight
        worker.inflight = {}
        if lost:
            worker.idle_deaths = 0
        else:
            worker.idle_deaths += 1
            if worker.idle_deaths > 3:
                return  # startup-failure loop: leave the worker down
        worker.respawns += 1
        self._spawn(worker.worker_id, slot=worker)
        crash = WorkerCrashError(worker.worker_id, exit_code)
        for req_id, state in lost.items():
            state.attempts_spent += 1
            retry = (
                self.retry_policy is not None
                and state.attempts_spent < self.retry_policy.max_attempts
                and (
                    state.deadline is None or not state.deadline.expired
                )
            )
            if retry:
                state.crash_resends += 1
                try:
                    self._send(worker, req_id, state)
                    continue
                except (BrokenPipeError, OSError):
                    worker.inflight.pop(req_id, None)
            results[state.index] = self._failure_result(
                state,
                RequestFailure.from_exception(
                    crash, state.attempts_spent
                ),
            )
            outstanding.pop(req_id, None)

    def _expire_overdue(
        self,
        results: List[Optional[QueryResult]],
        outstanding: Dict[int, _Pending],
        canceled: set,
    ) -> None:
        for req_id, state in list(outstanding.items()):
            if state.deadline is not None and state.deadline.expired:
                failure = RequestFailure.from_exception(
                    DeadlineExceededError(
                        state.deadline.budget_seconds,
                        state.deadline.elapsed(),
                    ),
                    max(state.attempts_spent, 1),
                )
                results[state.index] = self._failure_result(state, failure)
                outstanding.pop(req_id)
                canceled.add(req_id)  # drop the late reply if it comes

    #: Max requests in flight per worker pipe.  2 = one executing, one
    #: buffered (no worker idle gap between requests) while keeping
    #: pipe occupancy low enough that the router can never block on a
    #: full request pipe while a worker blocks on a full reply pipe —
    #: the send/send deadlock unbounded pipelining invites.
    _WINDOW = 2

    def _event_loop(
        self, requests: Sequence[Union[QueryRequest, ColumnarQueryRequest]]
    ) -> List[QueryResult]:
        from collections import deque
        from multiprocessing.connection import wait as conn_wait

        results: List[Optional[QueryResult]] = [None] * len(requests)
        outstanding: Dict[int, _Pending] = {}
        canceled: set = set()
        live = [w for w in self._workers if w.conn is not None]
        if not live:  # every worker is down: try a full respawn
            for worker in self._workers:
                worker.idle_deaths = 0
                worker.respawns += 1
                self._spawn(worker.worker_id, slot=worker)
            live = list(self._workers)
        queue = deque()
        for i, request in enumerate(requests):
            req_id = self._next_id
            self._next_id += 1
            state = _Pending(
                index=i,
                submitted=request,
                enc=self._encode(request),
                deadline=Deadline.after(self.deadline_seconds),
                start=perf_counter(),
            )
            outstanding[req_id] = state
            queue.append((req_id, state))

        def fill(worker: _Worker) -> None:
            # top the worker's window up from the shared queue
            while (
                queue
                and worker.conn is not None
                and len(worker.inflight) < self._WINDOW
            ):
                req_id, state = queue.popleft()
                if req_id not in outstanding:
                    continue  # expired while queued
                try:
                    self._send(worker, req_id, state)
                except (BrokenPipeError, OSError):
                    self._handle_crash(worker, results, outstanding)
                    return

        for worker in self._workers:
            fill(worker)
        while outstanding:
            self._expire_overdue(results, outstanding, canceled)
            if not outstanding:
                break
            timeout = None
            deadlines = [
                s.deadline.remaining()
                for s in outstanding.values()
                if s.deadline is not None
            ]
            if deadlines:
                timeout = max(min(deadlines), 0.0) + 1e-3
            conns = {w.conn: w for w in self._workers if w.conn is not None}
            if not conns:  # every worker down and staying down
                for req_id, state in list(outstanding.items()):
                    results[state.index] = self._failure_result(
                        state,
                        RequestFailure(
                            error_type=WorkerCrashError.__name__,
                            message="no live workers",
                            attempts=max(state.attempts_spent, 1),
                        ),
                    )
                    outstanding.pop(req_id)
                break
            ready = conn_wait(list(conns), timeout=timeout)
            for conn in ready:
                worker = conns[conn]
                try:
                    reply = conn.recv()
                except (EOFError, OSError):
                    self._handle_crash(worker, results, outstanding)
                    fill(worker)
                    continue
                tag, req_id = reply[0], reply[1]
                worker.inflight.pop(req_id, None)
                if req_id in canceled:
                    canceled.discard(req_id)
                    fill(worker)
                    continue
                state = outstanding.pop(req_id, None)
                if state is None:
                    fill(worker)
                    continue  # startup error replies (req_id == -1)
                if tag == "ok":
                    results[state.index] = self._ok_result(state, reply)
                else:
                    _, _, error_type, message, attempts = reply
                    results[state.index] = self._failure_result(
                        state,
                        RequestFailure(
                            error_type=error_type,
                            message=message,
                            attempts=state.attempts_spent + int(attempts),
                        ),
                    )
                fill(worker)
        return results  # type: ignore[return-value]

    # ------------------------------------------------------------------
    # public API (QueryService-shaped)
    # ------------------------------------------------------------------
    def run_batch(
        self,
        requests: Sequence[Union[QueryRequest, ColumnarQueryRequest]],
    ) -> List[QueryResult]:
        """Execute every request across the pool; request-order results.

        Accepts :class:`~repro.workloads.service.QueryRequest` batches
        (encoded at the door) or native
        :class:`~repro.serving.protocol.ColumnarQueryRequest` batches
        (zero per-query Python in the router).  Same failure contract
        as the single-process service: per-request errors come back
        as structured values on the affected results, and only
        :class:`~repro.reliability.ServiceOverloadedError` raises.
        """
        requests = list(requests)
        if not requests:
            return []
        with self._lock:
            if self._closed:
                raise ValueError("service is closed")
            self._admission.try_acquire(len(requests))
            t0 = perf_counter()
            try:
                with profiler.timer("serving.router.run_batch"):
                    return self._event_loop(requests)
            finally:
                self._admission.release(
                    len(requests), seconds=perf_counter() - t0
                )

    def run_workload(
        self,
        config: WorkloadConfig,
        *,
        batch_size: int = 1024,
    ) -> Tuple[WorkloadReport, List[QueryResult]]:
        """Generate a workload mix and replay it across the pool.

        Mirrors :meth:`QueryService.run_workload`: same generator,
        same deterministic query sequence, same report shape — but
        the requests cross the tier as columnar batches (encoded once
        here; zero per-query Python beyond encoding).  The report
        aggregates completed requests only.
        """
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        queries = WorkloadGenerator(self.graph, config).generate()
        if not queries:
            raise ValueError("workload generated no queries")
        requests = [
            encode_queries(queries[i:i + batch_size])
            for i in range(0, len(queries), batch_size)
        ]
        start = perf_counter()
        results = self.run_batch(requests)
        total = perf_counter() - start
        latency: Dict[str, float] = {}
        counts: Dict[str, int] = {}
        sizes: Dict[str, float] = {}
        completed = 0
        for result in results:
            if not result.ok:
                continue
            enc: ColumnarQueryRequest = result.request
            completed += len(enc)
            for key, s in result.seconds_by_kind.items():
                latency[key] = latency.get(key, 0.0) + s
            for code in np.unique(enc.kinds):
                key = KIND_CODES[int(code)].value
                mask = enc.kinds == code
                counts[key] = counts.get(key, 0) + int(mask.sum())
                sizes[key] = sizes.get(key, 0.0) + float(
                    result.cardinalities[mask].sum()
                )
        report = WorkloadReport(
            total_queries=completed,
            total_seconds=total,
            latency_by_kind={k: latency[k] / counts[k] for k in counts},
            count_by_kind=counts,
            mean_result_size={k: sizes[k] / counts[k] for k in counts},
        )
        return report, results

    # ------------------------------------------------------------------
    # stats
    # ------------------------------------------------------------------
    def worker_stats(self) -> List[Dict]:
        """Per-worker stats RPC: plan cache, residency, fault counters.

        Each entry is the worker's own report:
        ``{"worker_id", "respawns", "plan_cache": {...},
        "resident_copy_bytes", "fault_points"}`` —
        ``resident_copy_bytes`` is 0 for every worker (the
        one-resident-copy invariant, asserted in tests and by the
        throughput bench).  Dead-and-not-yet-respawned workers are
        skipped.
        """
        with self._lock:
            if self._closed:
                raise ValueError("service is closed")
            pending: List[Tuple[_Worker, int]] = []
            for worker in self._workers:
                if worker.conn is None:
                    continue
                req_id = self._next_id
                self._next_id += 1
                try:
                    worker.conn.send(("stats", req_id))
                    pending.append((worker, req_id))
                except (BrokenPipeError, OSError):
                    self._reap(worker)
            stats: List[Dict] = []
            for worker, req_id in pending:
                try:
                    if not worker.conn.poll(5.0):
                        continue  # pragma: no cover - stuck worker
                    reply = worker.conn.recv()
                except (EOFError, OSError):
                    self._reap(worker)
                    continue
                if reply[0] != "stats" or reply[1] != req_id:
                    continue  # pragma: no cover - protocol skew
                payload = dict(reply[2])
                payload["worker_id"] = worker.worker_id
                payload["respawns"] = worker.respawns
                stats.append(payload)
            return stats

    def plan_cache_stats(self) -> PlanCacheStats:
        """Pool-aggregate plan-cache counters (summed across workers).

        The per-worker breakdown is available via
        :meth:`worker_stats`; this aggregate keeps the
        :meth:`QueryService.plan_cache_stats` shape so operators and
        the ``bench-queries`` CLI read one schema for both tiers.
        """
        totals = dict.fromkeys(
            ("hits", "misses", "evictions", "resident_plans",
             "resident_bytes", "bypasses"), 0
        )
        for entry in self.worker_stats():
            for key in totals:
                totals[key] += int(entry["plan_cache"][key])
        return PlanCacheStats(**totals)

    def admission_stats(self):
        """Pending/admitted/shed counters of the bounded queue."""
        return self._admission.stats()

    def shared_memory_stats(self) -> Dict:
        """The one-resident-copy accounting, as numbers.

        ``segment_bytes`` is the single shared block (the only
        resident copy); ``worker_resident_bytes`` sums the column
        bytes workers own outright — 0 by construction.
        """
        workers = self.worker_stats()
        return {
            "segment_name": self.segment.name,
            "segment_bytes": self.segment.nbytes,
            "num_workers": len(workers),
            "worker_resident_bytes": sum(
                int(w["resident_copy_bytes"]) for w in workers
            ),
        }

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Stop workers, then unlink the segment (idempotent).

        Safe mid-batch from the owning thread's perspective: workers
        that ignore the stop (or are already dead) are terminated,
        and the segment is unlinked regardless — after ``close()``
        returns, no shared-memory name owned by this service exists.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
            for worker in getattr(self, "_workers", []):
                if worker.conn is not None:
                    try:
                        worker.conn.send(("stop",))
                    except (BrokenPipeError, OSError):
                        pass
            for worker in getattr(self, "_workers", []):
                if worker.process is not None:
                    worker.process.join(timeout=2.0)
                    if worker.process.is_alive():
                        worker.process.terminate()
                        worker.process.join(timeout=2.0)
                self._reap(worker)
            self.segment.close()

    def __enter__(self) -> "ProcessQueryService":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self):  # pragma: no cover - GC-order dependent
        try:
            self.close()
        except Exception:
            pass

    def __repr__(self) -> str:
        state = "closed" if self._closed else "open"
        return (
            f"ProcessQueryService({state}, workers={self.num_workers}, "
            f"start_method={self.start_method!r}, "
            f"segment_bytes={self.segment.nbytes})"
        )
