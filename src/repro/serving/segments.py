"""Shared-memory store segments: one resident copy of the graph.

The columnar :class:`~repro.graph.store.TemporalEdgeStore` is already
the memory model the whole system shares — flat int64 columns, one
attribute block, every view zero-copy.  This module extends that
sharing across *process* boundaries: :class:`SharedStoreSegment`
copies the store's five arrays (``src``, ``dst``, ``t``, ``offsets``,
``attributes``) into a single ``multiprocessing.shared_memory`` block
once, and every worker process reconstructs a read-only
:class:`TemporalEdgeStore` whose arrays are views *into that block* —
no per-worker copy, no pickling of graph objects, no serialization on
the request path.

The layout is described by a :class:`StoreManifest`: a small, plain,
picklable record (segment name + per-array dtype/shape/offset) that
is the only thing shipped to workers at startup.  Attaching is pure
pointer arithmetic: ``np.ndarray(shape, dtype, buffer=shm.buf,
offset=...)`` per array.

**One-resident-copy accounting.**  The invariant the serving tier
asserts is not an RSS guess but the same owned-bytes convention the
:class:`~repro.workloads.cache.SnapshotPlanCache` uses: an array
whose ``base`` is set is a view of memory someone else owns.
:func:`resident_copy_bytes` sums the bytes of a store's arrays that
the *calling process* owns outright — 0 for an attached store (every
array is a view of the shared block), the full column footprint for
an ordinary in-process store.

**Lifecycle.**  The creating process owns the segment: it keeps the
block registered with the ``multiprocessing`` resource tracker and
must call :meth:`SharedStoreSegment.close` (unmap + unlink) when the
tier shuts down.  Attaching processes deliberately *unregister* their
handle from their resource tracker (see :func:`_open_untracked`) —
otherwise a worker exit (clean or crashed) would let its tracker
unlink the segment out from under every sibling worker.  Segment
lifecycle under crashes and mid-batch teardown is pinned by
``tests/serving/test_lifecycle.py``.
"""

from __future__ import annotations

from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import Optional, Tuple

import numpy as np

from repro.graph.store import TemporalEdgeStore

__all__ = [
    "ArraySpec",
    "AttachedStore",
    "SharedStoreSegment",
    "StoreManifest",
    "attach_store",
    "resident_copy_bytes",
]

#: The store arrays a segment carries, in layout order.
_FIELDS = ("src", "dst", "t", "offsets", "attributes")

#: Segment offsets are aligned so every array starts on a cache line.
_ALIGN = 64


@dataclass(frozen=True)
class ArraySpec:
    """Placement of one store array inside the shared block."""

    field: str
    dtype: str
    shape: Tuple[int, ...]
    offset: int

    @property
    def nbytes(self) -> int:
        size = int(np.prod(self.shape)) if self.shape else 1
        return size * np.dtype(self.dtype).itemsize


@dataclass(frozen=True)
class StoreManifest:
    """Everything a worker needs to attach the store: plain data only.

    ``segment_name`` is the OS-level shared-memory name;
    ``total_bytes`` the block size (also the segment side of the
    one-resident-copy accounting).  The manifest is picklable and
    tiny — it is the entire startup payload of a worker.
    """

    segment_name: str
    num_nodes: int
    num_timesteps: int
    arrays: Tuple[ArraySpec, ...]
    total_bytes: int

    def spec(self, field: str) -> ArraySpec:
        for spec in self.arrays:
            if spec.field == field:
                return spec
        raise KeyError(f"manifest has no array {field!r}")


def _open_untracked(name: str) -> shared_memory.SharedMemory:
    """Attach an existing segment without resource-tracker ownership.

    The stdlib registers every ``SharedMemory`` handle with the
    process's resource tracker, which unlinks "leaked" segments when
    the registering process exits.  That is correct for the creator
    and wrong for attachers: a worker exiting (or crashing) must not
    destroy the segment its siblings are serving from.  Python 3.13+
    exposes ``track=False``; on older versions registration is
    suppressed during the attach.  (Suppressing beats
    register-then-``unregister``: a forked worker shares the parent's
    tracker process, so an unregister from the worker would erase the
    *creator's* registration and break its cleanup.)
    """
    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:  # Python < 3.13: no track kwarg
        from multiprocessing import resource_tracker

        original_register = resource_tracker.register
        resource_tracker.register = lambda *args, **kwargs: None
        try:
            return shared_memory.SharedMemory(name=name)
        finally:
            resource_tracker.register = original_register


def _map_array(
    shm: shared_memory.SharedMemory, spec: ArraySpec, writeable: bool
) -> np.ndarray:
    arr = np.ndarray(
        spec.shape, dtype=np.dtype(spec.dtype), buffer=shm.buf,
        offset=spec.offset,
    )
    if not writeable:
        arr.flags.writeable = False
    return arr


def resident_copy_bytes(store: TemporalEdgeStore) -> int:
    """Bytes of ``store``'s column data this process owns outright.

    The owned-bytes convention of the plan cache, applied to the
    store itself: arrays with ``base is None`` are owned allocations,
    arrays with a ``base`` are views of memory owned elsewhere (the
    shared segment, or another store).  An attached worker store
    reports 0 — the one-resident-copy assertion of the serving tier.
    """
    arrays = (store.src, store.dst, store.t, store.offsets,
              store.attributes)
    return sum(a.nbytes for a in arrays if a.base is None)


class SharedStoreSegment:
    """Owner-side export of one store into one shared-memory block.

    Parameters
    ----------
    store:
        The :class:`TemporalEdgeStore` to export.  Its five arrays
        are copied into the block once (the only copy the tier ever
        makes); the source store is not referenced afterwards.

    The segment is the *single* resident copy of the graph columns
    for the whole worker pool; :attr:`manifest` is what workers
    attach through.  Close with :meth:`close` (idempotent) — it
    unmaps and unlinks, after which new attaches fail with
    ``FileNotFoundError`` and existing mappings stay valid until
    their processes detach (POSIX unlink semantics).
    """

    def __init__(self, store: TemporalEdgeStore):
        specs = []
        offset = 0
        for field in _FIELDS:
            arr = np.ascontiguousarray(getattr(store, field))
            offset = -(-offset // _ALIGN) * _ALIGN  # round up
            specs.append(
                ArraySpec(field, arr.dtype.str, arr.shape, offset)
            )
            offset += arr.nbytes
        total = max(offset, 1)  # zero-byte segments are not allocatable
        self._shm: Optional[shared_memory.SharedMemory] = (
            shared_memory.SharedMemory(create=True, size=total)
        )
        for field, spec in zip(_FIELDS, specs):
            src = np.ascontiguousarray(getattr(store, field))
            if src.size:
                _map_array(self._shm, spec, writeable=True)[...] = src
        self.manifest = StoreManifest(
            segment_name=self._shm.name,
            num_nodes=store.num_nodes,
            num_timesteps=store.num_timesteps,
            arrays=tuple(specs),
            total_bytes=total,
        )

    # ------------------------------------------------------------------
    @property
    def name(self) -> str:
        """OS-level segment name (for diagnostics and leak checks)."""
        return self.manifest.segment_name

    @property
    def nbytes(self) -> int:
        """Size of the shared block — the one resident copy's bytes."""
        return self.manifest.total_bytes

    @property
    def closed(self) -> bool:
        return self._shm is None

    def view_store(self) -> TemporalEdgeStore:
        """A zero-copy store over the owner's own mapping.

        Mostly for tests: the owner can verify the exported bytes
        reconstruct the source store exactly without spawning a
        worker.
        """
        if self._shm is None:
            raise ValueError("segment is closed")
        return _build_store(self._shm, self.manifest)

    def close(self) -> None:
        """Unmap and unlink the segment (idempotent)."""
        shm, self._shm = self._shm, None
        if shm is None:
            return
        shm.close()
        try:
            shm.unlink()
        except FileNotFoundError:  # pragma: no cover - already gone
            pass

    def __enter__(self) -> "SharedStoreSegment":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self):  # pragma: no cover - GC-order dependent
        try:
            self.close()
        except Exception:
            pass

    def __repr__(self) -> str:
        state = "closed" if self.closed else self.name
        return (
            f"SharedStoreSegment({state}, bytes={self.nbytes}, "
            f"N={self.manifest.num_nodes}, "
            f"T={self.manifest.num_timesteps})"
        )


def _build_store(
    shm: shared_memory.SharedMemory, manifest: StoreManifest
) -> TemporalEdgeStore:
    """Read-only zero-copy :class:`TemporalEdgeStore` over ``shm``."""
    arrays = {
        spec.field: _map_array(shm, spec, writeable=False)
        for spec in manifest.arrays
    }
    store = TemporalEdgeStore(
        manifest.num_nodes,
        manifest.num_timesteps,
        arrays["src"],
        arrays["dst"],
        arrays["t"],
        arrays["attributes"],
        validate=False,
        canonical=True,
    )
    # the constructor recomputes offsets (a small owned array);
    # replace it with the exported view so *every* store array is a
    # zero-copy view of the segment and resident_copy_bytes() is 0
    store.offsets = arrays["offsets"]
    return store


class AttachedStore:
    """Worker-side handle: an attached segment + its store view.

    ``store`` is a read-only zero-copy :class:`TemporalEdgeStore`
    over the shared block (``resident_copy_bytes(store) == 0``).
    Keep this handle alive as long as the store is in use — closing
    it unmaps the block — and :meth:`close` on worker shutdown.
    Attaching never takes resource-tracker ownership, so worker
    exits (clean or crashed) cannot unlink the segment.
    """

    def __init__(self, manifest: StoreManifest):
        self.manifest = manifest
        self._shm: Optional[shared_memory.SharedMemory] = _open_untracked(
            manifest.segment_name
        )
        self.store = _build_store(self._shm, manifest)

    def close(self) -> None:
        """Unmap the block (never unlinks — the owner does that)."""
        shm, self._shm = self._shm, None
        self.store = None
        if shm is not None:
            shm.close()

    def __enter__(self) -> "AttachedStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def attach_store(manifest: StoreManifest) -> AttachedStore:
    """Attach the segment named by ``manifest`` (worker entry point).

    Raises ``FileNotFoundError`` when the segment no longer exists —
    the worker-side symptom of a router that already shut down.
    """
    return AttachedStore(manifest)
