"""Columnar wire protocol between the router and its workers.

The single-process serving stack already answers batched query
classes from parallel column arrays
(:meth:`~repro.workloads.engine.GraphQueryEngine.batch_has_edge` and
friends); what crosses the process boundary here is exactly that
representation.  A batch of
:class:`~repro.workloads.generator.Query` objects is encoded **once**
into a :class:`ColumnarQueryRequest` — eight flat numpy arrays —
and everything downstream (pipe transfer, worker-side kernel
dispatch, result return) is array-at-a-time:

* no pickling of ``Query`` objects (enum + tuple pickle per query
  would cost more than the query itself at 1M q/s);
* the worker feeds masked column selections *directly* into the
  ``batch_*`` kernels — including the frontier-vectorized traversal
  kernels (``batch_two_hop`` / ``batch_temporal_reach``) — so no
  per-query Python runs on the worker hot path for batched classes
  (only the per-snapshot analytics kinds decode per query);
* results come back as one int64 cardinality column, in query order.

Column layout (all length ``n``):

========  ========  =====================================================
column    dtype     meaning
========  ========  =====================================================
kinds     int8      :data:`KIND_CODES` index of the query class
ts        int64     primary snapshot (``Query.t``)
a0..a3    int64     integer args: node / u, v / dim / k / t0, t1
f0, f1    float64   float args: ATTRIBUTE_RANGE ``lo`` / ``hi``
========  ========  =====================================================

Per-kind argument packing (unused slots are 0 / 0.0):

* OUT_NEIGHBORS / IN_NEIGHBORS — ``a0`` = node
* HAS_EDGE — ``a0`` = u, ``a1`` = v
* TWO_HOP — ``a0`` = node, ``a1`` = k
* TRIANGLE_COUNT — (no args)
* ATTRIBUTE_RANGE — ``a0`` = dim, ``f0`` = lo, ``f1`` = hi
* DEGREE_TOPK — ``a0`` = k
* TEMPORAL_REACH / EDGE_WINDOW — ``a0`` = u, ``a1`` = v,
  ``a2`` = t0, ``a3`` = t1 (and ``ts`` = t0, as the generator sets it)

:func:`encode_queries` / :func:`decode_queries` are exact inverses
(pinned by ``tests/serving/test_protocol.py``), so the tier can
accept either representation at the API edge and the executors stay
bit-identical to the single-process service.

:func:`execute_encoded` is the worker-side execution core: grouped
kernel dispatch straight off the columns, with the same
``query.batch_kernel`` fault-injection point and the same
degrade-to-per-query fallback as
:func:`~repro.workloads.batch.run_queries_resilient` — a faulting
kernel class falls back to the pinned per-query reference twin with
identical results, and the degradation is reported.
"""

from __future__ import annotations

from dataclasses import dataclass
from time import perf_counter
from typing import Dict, FrozenSet, List, Sequence, Tuple

import numpy as np

from repro.reliability import fault_injector
from repro.workloads.batch import BATCHED_KINDS
from repro.workloads.engine import GraphQueryEngine
from repro.workloads.generator import Query, QueryKind, _run_query

__all__ = [
    "KIND_CODES",
    "ColumnarQueryRequest",
    "decode_queries",
    "encode_queries",
    "execute_encoded",
]

#: Wire code → query class, in enum definition order.  Codes are the
#: protocol's stable surface: appending new kinds is compatible,
#: reordering is not (pinned by ``tests/serving/test_protocol.py``).
KIND_CODES: Tuple[QueryKind, ...] = tuple(QueryKind)

_CODE_OF: Dict[QueryKind, int] = {k: i for i, k in enumerate(KIND_CODES)}

#: int args per kind → (a0, a1, a2, a3) slot count, for validation.
_INT_COLS = ("a0", "a1", "a2", "a3")


@dataclass(frozen=True)
class ColumnarQueryRequest:
    """One request batch as parallel columns — the tier's native format.

    Immutable and cheap to ship: eight flat arrays, no Python objects
    per query.  Build one with :func:`encode_queries` (or construct
    the columns directly for synthetic workloads — the throughput
    bench does, keeping per-query Python entirely off the hot path).
    """

    kinds: np.ndarray
    ts: np.ndarray
    a0: np.ndarray
    a1: np.ndarray
    a2: np.ndarray
    a3: np.ndarray
    f0: np.ndarray
    f1: np.ndarray

    def __post_init__(self):
        n = len(self.kinds)
        for name in ("ts", *_INT_COLS, "f0", "f1"):
            col = getattr(self, name)
            if len(col) != n:
                raise ValueError(
                    f"column {name!r} has length {len(col)}, "
                    f"expected {n}"
                )
        if n == 0:
            raise ValueError(
                "a ColumnarQueryRequest needs at least one query"
            )
        if self.kinds.size and (
            self.kinds.min() < 0 or self.kinds.max() >= len(KIND_CODES)
        ):
            raise ValueError("kind code out of range")

    def __len__(self) -> int:
        return len(self.kinds)

    def columns(self) -> Tuple[np.ndarray, ...]:
        """The eight columns in wire order (for pipe transfer)."""
        return (
            self.kinds, self.ts, self.a0, self.a1, self.a2, self.a3,
            self.f0, self.f1,
        )

    @classmethod
    def from_columns(
        cls, columns: Sequence[np.ndarray]
    ) -> "ColumnarQueryRequest":
        return cls(*columns)


def encode_queries(queries: Sequence[Query]) -> ColumnarQueryRequest:
    """Pack a query sequence into parallel columns (one pass)."""
    n = len(queries)
    if n == 0:
        raise ValueError("cannot encode an empty query sequence")
    kinds = np.zeros(n, dtype=np.int8)
    ts = np.zeros(n, dtype=np.int64)
    ints = np.zeros((4, n), dtype=np.int64)
    f0 = np.zeros(n, dtype=np.float64)
    f1 = np.zeros(n, dtype=np.float64)
    for i, q in enumerate(queries):
        kinds[i] = _CODE_OF[q.kind]
        ts[i] = q.t
        if q.kind == QueryKind.ATTRIBUTE_RANGE:
            ints[0, i] = q.args[0]
            f0[i] = q.args[1]
            f1[i] = q.args[2]
        else:
            for j, a in enumerate(q.args):
                ints[j, i] = a
    return ColumnarQueryRequest(
        kinds, ts, ints[0], ints[1], ints[2], ints[3], f0, f1
    )


def _decode_one(enc: ColumnarQueryRequest, i: int) -> Query:
    kind = KIND_CODES[int(enc.kinds[i])]
    t = int(enc.ts[i])
    if kind in (QueryKind.OUT_NEIGHBORS, QueryKind.IN_NEIGHBORS):
        args: Tuple = (int(enc.a0[i]),)
    elif kind == QueryKind.HAS_EDGE:
        args = (int(enc.a0[i]), int(enc.a1[i]))
    elif kind == QueryKind.TWO_HOP:
        args = (int(enc.a0[i]), int(enc.a1[i]))
    elif kind == QueryKind.TRIANGLE_COUNT:
        args = ()
    elif kind == QueryKind.ATTRIBUTE_RANGE:
        args = (int(enc.a0[i]), float(enc.f0[i]), float(enc.f1[i]))
    elif kind == QueryKind.DEGREE_TOPK:
        args = (int(enc.a0[i]),)
    else:  # TEMPORAL_REACH / EDGE_WINDOW
        args = (
            int(enc.a0[i]), int(enc.a1[i]),
            int(enc.a2[i]), int(enc.a3[i]),
        )
    return Query(kind=kind, t=t, args=args)


def decode_queries(enc: ColumnarQueryRequest) -> List[Query]:
    """Exact inverse of :func:`encode_queries`."""
    return [_decode_one(enc, i) for i in range(len(enc))]


def _dispatch_columns(
    engine: GraphQueryEngine,
    kind: QueryKind,
    enc: ColumnarQueryRequest,
    idx: np.ndarray,
) -> np.ndarray:
    """One batched kernel call straight off the masked columns."""
    fault_injector.fire("query.batch_kernel", key=kind.value)
    if kind in (QueryKind.OUT_NEIGHBORS, QueryKind.IN_NEIGHBORS):
        direction = "out" if kind == QueryKind.OUT_NEIGHBORS else "in"
        return engine.batch_degrees(enc.a0[idx], enc.ts[idx], direction)
    if kind == QueryKind.HAS_EDGE:
        return engine.batch_has_edge(
            enc.a0[idx], enc.a1[idx], enc.ts[idx]
        ).astype(np.int64)
    if kind == QueryKind.EDGE_WINDOW:
        return engine.batch_edge_window_counts(
            enc.a0[idx], enc.a1[idx], enc.a2[idx], enc.a3[idx]
        )
    if kind == QueryKind.ATTRIBUTE_RANGE:
        return engine.batch_attribute_range_counts(
            enc.ts[idx], enc.a0[idx], enc.f0[idx], enc.f1[idx]
        )
    if kind == QueryKind.TWO_HOP:
        return engine.batch_two_hop(enc.a0[idx], enc.ts[idx], enc.a1[idx])
    if kind == QueryKind.TEMPORAL_REACH:
        return engine.batch_temporal_reach(
            enc.a0[idx], enc.a1[idx], enc.a2[idx], enc.a3[idx]
        ).astype(np.int64)
    raise AssertionError(kind)  # pragma: no cover - guarded by caller


def execute_encoded(
    engine: GraphQueryEngine,
    enc: ColumnarQueryRequest,
    *,
    degrade: bool = True,
) -> Tuple[np.ndarray, Dict[str, float], FrozenSet[str]]:
    """Execute an encoded batch; the worker-side hot path.

    Returns ``(cardinalities, seconds_by_kind, degraded_kinds)`` with
    the same semantics as
    :func:`~repro.workloads.batch.run_queries_resilient` — and
    bit-identical cardinalities to it (and therefore to the per-query
    reference loop): batched classes go to their kernels as masked
    column selections, the rest decode to per-query dispatch.  With
    ``degrade`` a faulting kernel class falls back per-query instead
    of raising; the ``query.batch_kernel`` injection point fires per
    kernel call exactly as in the single-process path, so chaos
    schedules behave identically across tiers.
    """
    n = len(enc)
    cardinalities = np.zeros(n, dtype=np.int64)
    seconds: Dict[str, float] = {}
    degraded: List[str] = []
    codes = np.unique(enc.kinds)
    # match run_queries_batched's grouping order (first appearance)
    # so per-kind fault arrival counters line up across tiers
    first_pos = {
        int(c): int(np.argmax(enc.kinds == c)) for c in codes
    }
    for code in sorted(first_pos, key=first_pos.get):
        kind = KIND_CODES[code]
        idx = np.flatnonzero(enc.kinds == code)
        start = perf_counter()
        if kind in BATCHED_KINDS:
            try:
                cardinalities[idx] = _dispatch_columns(
                    engine, kind, enc, idx
                )
            except Exception:
                if not degrade:
                    raise
                degraded.append(kind.value)
                for i in idx.tolist():
                    cardinalities[i] = _run_query(
                        engine, _decode_one(enc, i)
                    )
        else:
            for i in idx.tolist():
                cardinalities[i] = _run_query(engine, _decode_one(enc, i))
        seconds[kind.value] = seconds.get(kind.value, 0.0) + (
            perf_counter() - start
        )
    return cardinalities, seconds, frozenset(degraded)
