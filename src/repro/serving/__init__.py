"""``repro.serving`` — the multi-process query-serving tier.

:class:`~repro.workloads.service.QueryService` is deliberately
single-process: its value is one shared in-memory store and plan
cache, and the batched kernels release the GIL — but the *dispatch*
around them (query grouping, result assembly, Python-level request
handling) does not, so one process tops out near one core of useful
work regardless of pool width.  This package is the next scale step
the ROADMAP names: a long-lived serving tier fronting N worker
processes that map the columnar store zero-copy from shared memory,
so throughput scales with cores while the graph stays resident
exactly once.  Three layers (contract in ``docs/workloads.md``):

* :mod:`~repro.serving.segments` — **shared-memory store segments**:
  :class:`SharedStoreSegment` exports a
  :class:`~repro.graph.store.TemporalEdgeStore`'s int columns,
  per-step offsets and ``(T, N, F)`` attribute block into one
  ``multiprocessing.shared_memory`` block described by a small
  picklable :class:`StoreManifest` (dtype/shape/offset per array);
  :func:`attach_store` reconstructs a read-only zero-copy store view
  in a worker.  :func:`resident_copy_bytes` is the owned-bytes
  accounting that lets tests assert the one-resident-copy invariant.
* :mod:`~repro.serving.worker` — **worker pool**: each worker is a
  long-lived process running the full existing engine
  (:class:`~repro.workloads.engine.GraphQueryEngine` over the
  attached store) with its own bounded
  :class:`~repro.workloads.cache.SnapshotPlanCache`, fed over a
  small columnar protocol (:mod:`~repro.serving.protocol`) that
  ships query batches as the parallel column arrays the ``batch_*``
  kernels already consume and returns columnar results.
* :mod:`~repro.serving.router` — **router**:
  :class:`ProcessQueryService` hash-routes request batches across
  workers (the deterministic per-request contract makes results
  placement-independent), reassembles results in request order, and
  threads the reliability knobs — per-request
  :class:`~repro.reliability.Deadline`,
  :class:`~repro.reliability.RetryPolicy` on transient worker
  faults, :class:`~repro.reliability.AdmissionController`
  backpressure, and worker-death → respawn with per-request
  :class:`~repro.reliability.RequestFailure` isolation — across the
  process boundary.

The tier's invariant mirrors the single-process service: every
request that completes is **bit-identical** to the same request run
through a single-process :class:`QueryService` (asserted by
``tests/serving/`` and the ``serving-smoke`` CI job), and the store
columns are resident exactly once — in the shared segment — no
matter how many workers serve them.
"""

from repro.serving.protocol import (
    ColumnarQueryRequest,
    decode_queries,
    encode_queries,
)
from repro.serving.router import ProcessQueryService
from repro.serving.segments import (
    SharedStoreSegment,
    StoreManifest,
    attach_store,
    resident_copy_bytes,
)
from repro.serving.worker import WorkerConfig

__all__ = [
    "ColumnarQueryRequest",
    "ProcessQueryService",
    "SharedStoreSegment",
    "StoreManifest",
    "WorkerConfig",
    "attach_store",
    "decode_queries",
    "encode_queries",
    "resident_copy_bytes",
]
