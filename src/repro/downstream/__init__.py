"""Downstream case study (§IV-E): future-snapshot forecasting.

The paper validates generated-graph utility by augmenting the training
data of CoEvoGNN (Wang et al., TKDE 2021), a co-evolution forecaster,
and measuring link-prediction F1 and attribute-prediction RMSE on the
final snapshot.

* :class:`CoEvoGNN` — GNN + GRU sequence model with link and attribute
  heads.
* :func:`evaluate_augmentation` — trains with/without synthetic
  augmentation and reports both task metrics.
"""

from repro.downstream.coevognn import CoEvoGNN, CoEvoGNNConfig
from repro.downstream.tasks import (
    AugmentationResult,
    attribute_prediction_rmse,
    evaluate_augmentation,
    link_prediction_f1,
)

__all__ = [
    "CoEvoGNN",
    "CoEvoGNNConfig",
    "AugmentationResult",
    "evaluate_augmentation",
    "link_prediction_f1",
    "attribute_prediction_rmse",
]
