"""CoEvoGNN-style dynamic attributed graph forecaster.

Follows the co-evolution modelling idea of Wang et al. (TKDE 2021):
node states are propagated through a GNN over each snapshot, evolved
with a GRU across time, and decoded by two heads — a bilinear link
scorer for next-step topology and an MLP for next-step attributes.
Trained to forecast snapshot ``t+1`` from the sequence prefix up to
``t``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.autodiff import Tensor, functional as F, no_grad
from repro.autodiff.tensor import as_tensor
from repro.graph import DynamicAttributedGraph, GraphSnapshot
from repro.nn import Adam, GINLayer, GRUCell, Linear, MLP, Module, Parameter
from repro.nn import init as nn_init


@dataclass
class CoEvoGNNConfig:
    """Hyperparameters of the forecaster."""

    num_nodes: int
    num_attributes: int
    hidden_dim: int = 24
    epochs: int = 40
    learning_rate: float = 5e-3
    negative_ratio: int = 1
    grad_clip: float = 5.0
    seed: int = 0


class CoEvoGNN(Module):
    """Forecast the next snapshot (links + attributes) of a sequence."""

    def __init__(self, config: CoEvoGNNConfig):
        super().__init__()
        self.config = config
        rng = np.random.default_rng(config.seed)
        d = config.hidden_dim
        self.input_proj = Linear(config.num_attributes + 2, d, rng=rng)
        self.gnn = GINLayer(d, d, rng=rng)
        self.gru = GRUCell(d, d, rng=rng)
        self.link_bilinear = Parameter(nn_init.xavier_uniform(rng, d, d))
        # learned edge-persistence term: real dynamic graphs repeat a
        # large fraction of edges between consecutive snapshots, and the
        # co-evolution model conditions on the previous structure
        self.repeat_weight = Parameter(np.array([1.0]))
        self.link_bias = Parameter(np.array([-2.0]))
        self.attr_head = MLP([d, d, max(config.num_attributes, 1)], rng=rng)
        self._train_rng = np.random.default_rng(config.seed + 1)

    # ------------------------------------------------------------------
    def _snapshot_features(self, snap: GraphSnapshot) -> np.ndarray:
        n = snap.num_nodes
        in_deg = snap.in_degrees()[:, None] / max(n - 1, 1)
        out_deg = snap.out_degrees()[:, None] / max(n - 1, 1)
        return np.concatenate([snap.attributes, in_deg, out_deg], axis=1)

    def encode_sequence(self, snapshots: Sequence[GraphSnapshot]) -> Tensor:
        """Run the GNN+GRU over a prefix; returns final hidden state (N, d)."""
        n = self.config.num_nodes
        h = Tensor(np.zeros((n, self.config.hidden_dim)))
        for snap in snapshots:
            h = self._encode_step(h, snap)
        return h

    def link_logits(
        self, h: Tensor, pairs: np.ndarray, prev_adj: np.ndarray
    ) -> Tensor:
        """Link scores for (src, dst) pairs: bilinear state affinity plus
        a learned persistence boost for edges present in ``prev_adj``."""
        src = h[pairs[:, 0]]
        dst = h[pairs[:, 1]]
        affinity = ((src @ self.link_bilinear) * dst).sum(axis=1)
        repeated = prev_adj[pairs[:, 0], pairs[:, 1]]
        return affinity + self.repeat_weight * repeated + self.link_bias

    def predict_attributes(self, h: Tensor) -> Tensor:
        """Next-step attribute matrix from hidden states ``h``."""
        return self.attr_head(h)

    # ------------------------------------------------------------------
    def fit(self, sequences: Sequence[DynamicAttributedGraph]) -> List[float]:
        """Train on one or more sequences (extra ones = augmentation).

        Each sequence contributes every (prefix -> next snapshot)
        forecasting task.  Hidden states are computed incrementally in a
        single sequential pass per epoch (the prefix ``t`` encoding is the
        continuation of the prefix ``t-1`` encoding), so one epoch costs
        O(T) snapshot encodings rather than O(T^2).  Returns the loss
        history.
        """
        cfg = self.config
        optimizer = Adam(self.parameters(), lr=cfg.learning_rate)
        history: List[float] = []
        for _ in range(cfg.epochs):
            total_loss: Optional[Tensor] = None
            count = 0
            for seq in sequences:
                if seq.num_timesteps < 2:
                    continue
                h = Tensor(np.zeros((cfg.num_nodes, cfg.hidden_dim)))
                for t in range(1, seq.num_timesteps):
                    h = self._encode_step(h, seq.snapshots[t - 1])
                    loss = self._forecast_loss(h, seq, t)
                    total_loss = (
                        loss if total_loss is None else total_loss + loss
                    )
                    count += 1
            if count == 0:
                raise ValueError("no sequence long enough to forecast")
            total_loss = total_loss / count
            optimizer.zero_grad()
            total_loss.backward()
            if cfg.grad_clip:
                optimizer.clip_grad_norm(cfg.grad_clip)
            optimizer.step()
            history.append(float(total_loss.data))
        return history

    def _encode_step(self, h: Tensor, snap: GraphSnapshot) -> Tensor:
        """One GNN+GRU recurrence step: fold ``snap`` into state ``h``."""
        x = F.tanh(self.input_proj(as_tensor(self._snapshot_features(snap))))
        msg = self.gnn(x, snap.undirected_adjacency())
        return self.gru(msg, h)

    def _forecast_loss(
        self, h: Tensor, seq: DynamicAttributedGraph, t: int
    ) -> Tensor:
        cfg = self.config
        target = seq[t]
        # link loss with negative sampling
        pos = np.array(target.edges(), dtype=int)
        rng = self._train_rng
        n = cfg.num_nodes
        n_neg = max(len(pos), 1) * cfg.negative_ratio
        neg = rng.integers(0, n, size=(n_neg, 2))
        neg = neg[neg[:, 0] != neg[:, 1]]
        neg = neg[target.adjacency[neg[:, 0], neg[:, 1]] == 0]
        if len(pos) == 0:
            link_loss = as_tensor(0.0)
        else:
            pairs = np.concatenate([pos, neg]) if len(neg) else pos
            labels = np.concatenate([np.ones(len(pos)), np.zeros(len(neg))])
            logits = self.link_logits(h, pairs, seq[t - 1].adjacency)
            p = F.clip(F.sigmoid(logits), 1e-7, 1 - 1e-7)
            link_loss = -(labels * F.log(p) + (1 - labels) * F.log(1 - p)).mean()
        # attribute loss
        if cfg.num_attributes > 0:
            x_pred = self.predict_attributes(h)
            attr_loss = ((x_pred - target.attributes) ** 2).mean()
        else:
            attr_loss = as_tensor(0.0)
        return link_loss + attr_loss

    # ------------------------------------------------------------------
    def predict_snapshot(
        self, prefix: Sequence[GraphSnapshot], edge_budget: int
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Forecast (adjacency, attributes) after ``prefix``.

        Topology keeps the ``edge_budget`` highest-scoring pairs.
        """
        with no_grad():
            h = self.encode_sequence(prefix)
            n = self.config.num_nodes
            all_pairs = np.array(
                [(i, j) for i in range(n) for j in range(n) if i != j], dtype=int
            )
            logits = self.link_logits(
                h, all_pairs, prefix[-1].adjacency
            ).data
            adj = np.zeros((n, n))
            if edge_budget > 0:
                top = np.argsort(-logits)[:edge_budget]
                for idx in top:
                    i, j = all_pairs[idx]
                    adj[i, j] = 1.0
            attrs = (
                self.predict_attributes(h).data.copy()
                if self.config.num_attributes > 0
                else np.zeros((n, 0))
            )
        return adj, attrs
