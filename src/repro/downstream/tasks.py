"""Case-study tasks: link prediction F1 and attribute prediction RMSE
with and without synthetic data augmentation (paper Fig. 10)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.downstream.coevognn import CoEvoGNN, CoEvoGNNConfig
from repro.graph import DynamicAttributedGraph


def link_prediction_f1(true_adj: np.ndarray, pred_adj: np.ndarray) -> float:
    """Micro F1 over directed edges (diagonal excluded)."""
    n = true_adj.shape[0]
    mask = ~np.eye(n, dtype=bool)
    t = true_adj[mask] > 0
    p = pred_adj[mask] > 0
    tp = float(np.sum(t & p))
    fp = float(np.sum(~t & p))
    fn = float(np.sum(t & ~p))
    if tp == 0:
        return 0.0
    precision = tp / (tp + fp)
    recall = tp / (tp + fn)
    return 2 * precision * recall / (precision + recall)


def attribute_prediction_rmse(true_x: np.ndarray, pred_x: np.ndarray) -> float:
    """RMSE over all node-attribute entries."""
    return float(np.sqrt(((true_x - pred_x) ** 2).mean()))


@dataclass
class AugmentationResult:
    """F1 / RMSE for one training condition."""

    f1: float
    rmse: float


def evaluate_augmentation(
    original: DynamicAttributedGraph,
    synthetic: Optional[DynamicAttributedGraph],
    epochs: int = 40,
    hidden_dim: int = 24,
    seed: int = 0,
) -> AugmentationResult:
    """Train CoEvoGNN and score final-snapshot forecasting (§IV-E).

    Follows the paper's protocol: the model trains on all snapshots
    before the last one (plus the synthetic sequence as augmentation
    when given) and is tested on predicting the final snapshot.
    """
    if original.num_timesteps < 3:
        raise ValueError("need at least 3 timesteps to train and test")
    train_seq = original.truncated(original.num_timesteps - 1)
    sequences = [train_seq]
    if synthetic is not None:
        sequences.append(synthetic)
    cfg = CoEvoGNNConfig(
        num_nodes=original.num_nodes,
        num_attributes=original.num_attributes,
        hidden_dim=hidden_dim,
        epochs=epochs,
        seed=seed,
    )
    model = CoEvoGNN(cfg)
    model.fit(sequences)
    target = original[original.num_timesteps - 1]
    adj, attrs = model.predict_snapshot(
        train_seq.snapshots, edge_budget=target.num_edges
    )
    f1 = link_prediction_f1(target.adjacency, adj)
    rmse = (
        attribute_prediction_rmse(target.attributes, attrs)
        if original.num_attributes > 0
        else float("nan")
    )
    return AugmentationResult(f1=f1, rmse=rmse)
