"""Neural-network building blocks on top of :mod:`repro.autodiff`.

Provides the layers VRDAG and the deep baselines are composed of:

* :class:`Module` / :class:`Parameter` — the container protocol.
* :class:`Linear`, :class:`MLP` — dense layers.
* :class:`GRUCell` — the recurrence state updater substrate (§III-D).
* :class:`GINLayer` — the bi-flow encoder's message-passing unit (Eq. 5).
* :class:`GATLayer` — the attribute decoder's attention network (Eq. 12).
* :class:`Time2Vec` — the periodic time embedding (Eq. 13).
* :mod:`repro.nn.optim` — SGD and Adam.
"""

from repro.nn.module import Module, Parameter
from repro.nn.linear import Linear, MLP
from repro.nn.gru import GRUCell
from repro.nn.gin import GINLayer
from repro.nn.attention import GATLayer
from repro.nn.time2vec import Time2Vec
from repro.nn import init, optim
from repro.nn.optim import SGD, Adam

__all__ = [
    "Module",
    "Parameter",
    "Linear",
    "MLP",
    "GRUCell",
    "GINLayer",
    "GATLayer",
    "Time2Vec",
    "init",
    "optim",
    "SGD",
    "Adam",
]
