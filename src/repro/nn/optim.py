"""First-order optimizers: SGD (with momentum) and Adam."""

from __future__ import annotations

from typing import Iterable, List, Optional

import numpy as np

from repro.nn.module import Parameter


class Optimizer:
    """Base optimizer over a fixed parameter list."""

    def __init__(self, params: Iterable[Parameter]):
        self.params: List[Parameter] = list(params)
        if not self.params:
            raise ValueError("optimizer received no parameters")

    def zero_grad(self) -> None:
        """Clear gradients on every managed parameter."""
        for p in self.params:
            p.grad = None

    def clip_grad_norm(self, max_norm: float) -> float:
        """Globally rescale gradients to at most ``max_norm`` (L2).

        Returns the pre-clip norm.  Parameters without gradients are
        skipped (they did not participate in the loss this step).
        """
        total = 0.0
        for p in self.params:
            if p.grad is not None:
                total += float((p.grad**2).sum())
        total = float(np.sqrt(total))
        if total > max_norm and total > 0:
            scale = max_norm / total
            for p in self.params:
                if p.grad is not None:
                    p.grad = p.grad * scale
        return total

    def step(self) -> None:  # pragma: no cover - abstract
        """Apply one update step; subclasses must override."""
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum."""

    def __init__(
        self,
        params: Iterable[Parameter],
        lr: float = 1e-2,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
    ):
        super().__init__(params)
        self.lr = lr
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity = [np.zeros_like(p.data) for p in self.params]

    def step(self) -> None:
        """One (momentum) SGD update over all parameters with gradients."""
        for p, v in zip(self.params, self._velocity):
            if p.grad is None:
                continue
            g = p.grad
            if self.weight_decay:
                g = g + self.weight_decay * p.data
            if self.momentum:
                v *= self.momentum
                v += g
                g = v
            p.data -= self.lr * g


class Adam(Optimizer):
    """Adam (Kingma & Ba, 2015) with bias correction."""

    def __init__(
        self,
        params: Iterable[Parameter],
        lr: float = 1e-3,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ):
        super().__init__(params)
        self.lr = lr
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._m = [np.zeros_like(p.data) for p in self.params]
        self._v = [np.zeros_like(p.data) for p in self.params]
        self._t = 0

    def step(self) -> None:
        """One bias-corrected Adam update over all parameters with gradients."""
        self._t += 1
        b1, b2 = self.beta1, self.beta2
        bc1 = 1.0 - b1**self._t
        bc2 = 1.0 - b2**self._t
        for p, m, v in zip(self.params, self._m, self._v):
            if p.grad is None:
                continue
            g = p.grad
            if self.weight_decay:
                g = g + self.weight_decay * p.data
            m *= b1
            m += (1 - b1) * g
            v *= b2
            v += (1 - b2) * (g * g)
            p.data -= self.lr * (m / bc1) / (np.sqrt(v / bc2) + self.eps)
