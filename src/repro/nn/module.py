"""Module/Parameter container protocol (a minimal ``torch.nn.Module``)."""

from __future__ import annotations

from typing import Dict, Iterator, List, Tuple

import numpy as np

from repro.autodiff import Tensor


class Parameter(Tensor):
    """A Tensor that is registered as trainable by :class:`Module`."""

    def __init__(self, data):
        super().__init__(np.asarray(data, dtype=np.float64), requires_grad=True)


class Module:
    """Base class for layers and models.

    Subclasses assign :class:`Parameter` and :class:`Module` instances as
    attributes; :meth:`parameters` walks the tree.  Keeps a ``training``
    flag toggled by :meth:`train` / :meth:`eval` (used by dropout).
    """

    def __init__(self):
        self.training = True

    # -- parameter / submodule discovery --------------------------------
    def named_parameters(self, prefix: str = "") -> Iterator[Tuple[str, Parameter]]:
        """Yield ``(dotted_name, Parameter)`` pairs, depth-first."""
        for name, value in vars(self).items():
            full = f"{prefix}{name}"
            if isinstance(value, Parameter):
                yield full, value
            elif isinstance(value, Module):
                yield from value.named_parameters(prefix=f"{full}.")
            elif isinstance(value, (list, tuple)):
                for i, item in enumerate(value):
                    if isinstance(item, Parameter):
                        yield f"{full}.{i}", item
                    elif isinstance(item, Module):
                        yield from item.named_parameters(prefix=f"{full}.{i}.")

    def parameters(self) -> List[Parameter]:
        """All parameters, depth-first."""
        return [p for _, p in self.named_parameters()]

    def modules(self) -> Iterator["Module"]:
        """This module and every submodule, depth-first."""
        yield self
        for value in vars(self).items():
            pass
        for value in vars(self).values():
            if isinstance(value, Module):
                yield from value.modules()
            elif isinstance(value, (list, tuple)):
                for item in value:
                    if isinstance(item, Module):
                        yield from item.modules()

    # -- train / eval ----------------------------------------------------
    def train(self, mode: bool = True) -> "Module":
        """Enter training mode (recursively)."""
        for m in self.modules():
            m.training = mode
        return self

    def eval(self) -> "Module":
        """Enter inference mode (recursively)."""
        return self.train(False)

    # -- grads -------------------------------------------------------------
    def zero_grad(self) -> None:
        """Clear gradients on every parameter."""
        for p in self.parameters():
            p.grad = None

    def num_parameters(self) -> int:
        """Total number of scalar parameters (paper §III-G model complexity)."""
        return sum(p.size for p in self.parameters())

    # -- state dict --------------------------------------------------------
    def state_dict(self) -> Dict[str, np.ndarray]:
        """Copy of every parameter array, keyed by dotted name."""
        return {name: p.data.copy() for name, p in self.named_parameters()}

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        """Load arrays saved by :meth:`state_dict` (shape-checked)."""
        own = dict(self.named_parameters())
        missing = set(own) - set(state)
        if missing:
            raise KeyError(f"state dict missing parameters: {sorted(missing)}")
        for name, p in own.items():
            value = np.asarray(state[name], dtype=np.float64)
            if value.shape != p.data.shape:
                raise ValueError(
                    f"shape mismatch for {name}: expected {p.data.shape}, "
                    f"got {value.shape}"
                )
            p.data = value.copy()

    # -- call --------------------------------------------------------------
    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    def forward(self, *args, **kwargs):  # pragma: no cover - abstract
        """Computation of this module; subclasses must override."""
        raise NotImplementedError
