"""GIN message-passing layer on dense (directed) adjacency matrices.

This is the unit the bi-flow encoder (paper Eq. 5) composes twice per
hop — once over in-neighbourhoods, once over out-neighbourhoods.  The
layer itself is direction-agnostic: callers pass the adjacency already
oriented so that row ``i`` of ``adj @ h`` aggregates the desired
neighbourhood of node ``i``.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.autodiff import Tensor, functional as F
from repro.autodiff.tensor import as_tensor
from repro.autodiff.tape import tape_for
from repro.nn.module import Module, Parameter
from repro.nn.linear import MLP


class GINLayer(Module):
    """Graph Isomorphism Network layer (Xu et al., 2019).

    .. math::
        h_i' = f\\big((1 + \\epsilon) h_i + \\sum_{j \\in N(i)} h_j\\big)

    ``epsilon`` is learnable (initialized to 0) and ``f`` is an MLP.

    Parameters
    ----------
    in_features, out_features:
        Feature widths.
    hidden:
        Hidden width of the internal MLP; defaults to ``out_features``.
    mlp_layers:
        Number of MLP layers (the ``Lm`` of the paper's complexity
        analysis, §III-G).
    """

    def __init__(
        self,
        in_features: int,
        out_features: int,
        hidden: Optional[int] = None,
        mlp_layers: int = 2,
        rng: Optional[np.random.Generator] = None,
    ):
        super().__init__()
        hidden = hidden or out_features
        sizes = [in_features] + [hidden] * (mlp_layers - 1) + [out_features]
        self.mlp = MLP(sizes, activation="relu", rng=rng)
        self.epsilon = Parameter(np.zeros(1))

    def forward(self, h: Tensor, adj: np.ndarray) -> Tensor:
        """Aggregate over the neighbourhood encoded by ``adj``.

        ``adj`` is a constant ``(N, N)`` 0/1 matrix: ``adj[i, j] = 1``
        means node ``j``'s state contributes to node ``i``'s update.
        """
        adj_np = np.asarray(adj, dtype=np.float64)
        tape = tape_for(h)
        if tape is not None:
            hv = tape.lift(h)
            agg = tape.apply("matmul", (adj_np, hv))
            return self.mlp((1.0 + tape.lift(self.epsilon)) * hv + agg)
        adj_t = as_tensor(adj_np)
        agg = adj_t @ h
        return self.mlp((1.0 + self.epsilon) * h + agg)
