"""Dense layers: :class:`Linear` and :class:`MLP`."""

from __future__ import annotations

from typing import Callable, Optional, Sequence

import numpy as np

from repro.autodiff import Tensor, functional as F
from repro.autodiff.tape import tape_for
from repro.nn.module import Module, Parameter
from repro.nn import init

_ACTIVATIONS: dict[str, Callable[[Tensor], Tensor]] = {
    "relu": F.relu,
    "leaky_relu": F.leaky_relu,
    "tanh": F.tanh,
    "sigmoid": F.sigmoid,
    "elu": F.elu,
    "softplus": F.softplus,
    "identity": lambda x: x,
}


def get_activation(name: str) -> Callable[[Tensor], Tensor]:
    """Look up an activation function by name (raises ``KeyError`` otherwise)."""
    try:
        return _ACTIVATIONS[name]
    except KeyError:
        raise KeyError(
            f"unknown activation {name!r}; available: {sorted(_ACTIVATIONS)}"
        ) from None


class Linear(Module):
    """Affine map ``y = x @ W + b``.

    Parameters
    ----------
    in_features, out_features:
        Input/output widths.
    bias:
        Whether to learn an additive bias.
    rng:
        Generator used for Xavier initialization.
    """

    def __init__(
        self,
        in_features: int,
        out_features: int,
        bias: bool = True,
        rng: Optional[np.random.Generator] = None,
    ):
        super().__init__()
        rng = rng or np.random.default_rng()
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(init.xavier_uniform(rng, in_features, out_features))
        self.bias = Parameter(np.zeros(out_features)) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        """Affine map ``x @ W + b``.

        On the tape engine the whole layer is one fused ``linear_act``
        record; otherwise it builds the legacy closure graph.
        """
        tape = tape_for(x)
        if tape is not None:
            inputs = (
                (x, self.weight)
                if self.bias is None
                else (x, self.weight, self.bias)
            )
            return tape.apply("linear_act", inputs, activation="identity")
        out = x @ self.weight
        if self.bias is not None:
            out = out + self.bias
        return out


class MLP(Module):
    """Multi-layer perceptron with a configurable hidden activation.

    The paper uses LeakyReLU MLPs for the prior/posterior networks and
    the MixBernoulli heads (Eq. 4, Eq. 11); ``activation`` defaults to
    that.  ``out_activation`` is applied after the final layer.
    """

    def __init__(
        self,
        sizes: Sequence[int],
        activation: str = "leaky_relu",
        out_activation: str = "identity",
        bias: bool = True,
        rng: Optional[np.random.Generator] = None,
    ):
        super().__init__()
        if len(sizes) < 2:
            raise ValueError("MLP needs at least input and output sizes")
        rng = rng or np.random.default_rng()
        self.sizes = tuple(int(s) for s in sizes)
        self.layers = [
            Linear(self.sizes[i], self.sizes[i + 1], bias=bias, rng=rng)
            for i in range(len(self.sizes) - 1)
        ]
        self.activation = activation
        self.out_activation = out_activation
        self._act = get_activation(activation)
        self._out_act = get_activation(out_activation)

    def forward(self, x: Tensor) -> Tensor:
        """Apply all layers with the configured activations.

        On the tape engine each affine+activation pair is one fused
        ``linear_act`` record (a 3-layer MLP is 3 records total).
        """
        tape = tape_for(x)
        if tape is not None:
            last = len(self.layers) - 1
            for i, layer in enumerate(self.layers):
                act = self.activation if i < last else self.out_activation
                inputs = (
                    (x, layer.weight)
                    if layer.bias is None
                    else (x, layer.weight, layer.bias)
                )
                x = tape.apply("linear_act", inputs, activation=act)
            return x
        for layer in self.layers[:-1]:
            x = self._act(layer(x))
        x = self.layers[-1](x)
        return self._out_act(x)
