"""Graph attention layer (Velickovic et al., 2018).

Used by VRDAG's attribute decoder (paper Eq. 12) to run one round of
attentive message passing on the freshly generated adjacency before
decoding node attributes.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.autodiff import Tensor, functional as F
from repro.autodiff.tape import tape_for
from repro.nn.module import Module, Parameter
from repro.nn import init
from repro.nn.linear import Linear


class GATLayer(Module):
    """Single-head dense graph attention.

    .. math::
        e_{ij} = \\mathrm{LeakyReLU}(a_s^\\top W h_i + a_d^\\top W h_j) \\\\
        \\alpha_{ij} = \\mathrm{softmax}_{j \\in N(i) \\cup \\{i\\}}(e_{ij}) \\\\
        h_i' = \\sigma\\big(\\sum_j \\alpha_{ij} W h_j\\big)

    Self-loops are always included so isolated nodes still produce a
    well-defined output (softmax over an empty neighbourhood would be
    degenerate otherwise).
    """

    def __init__(
        self,
        in_features: int,
        out_features: int,
        negative_slope: float = 0.2,
        rng: Optional[np.random.Generator] = None,
    ):
        super().__init__()
        rng = rng or np.random.default_rng()
        self.proj = Linear(in_features, out_features, bias=False, rng=rng)
        self.attn_src = Parameter(init.xavier_uniform(rng, out_features, 1))
        self.attn_dst = Parameter(init.xavier_uniform(rng, out_features, 1))
        self.negative_slope = negative_slope

    def forward(self, h: Tensor, adj: np.ndarray) -> Tensor:
        """Attend over ``adj`` (constant 0/1 matrix, row i = neighbours of i).

        On the tape engine everything after the input projection —
        scores, masked softmax, renormalization, aggregation, ELU — is
        one fused ``gat_attention`` record.
        """
        tape = tape_for(h)
        if tape is not None:
            wh = self.proj(h)
            mask = np.asarray(adj, dtype=np.float64).copy()
            np.fill_diagonal(mask, 1.0)
            return tape.apply(
                "gat_attention",
                (wh, self.attn_src, self.attn_dst),
                mask=mask,
                negative_slope=self.negative_slope,
            )
        n = h.shape[0]
        wh = self.proj(h)                        # (N, d)
        src = wh @ self.attn_src                 # (N, 1) contribution of i
        dst = wh @ self.attn_dst                 # (N, 1) contribution of j
        scores = F.leaky_relu(src + dst.transpose(), self.negative_slope)  # (N, N)

        mask = np.asarray(adj, dtype=np.float64).copy()
        np.fill_diagonal(mask, 1.0)              # ensure self-loops
        neg_inf = np.where(mask > 0, 0.0, -1e9)
        alpha = F.softmax(scores + neg_inf, axis=1)
        # zero out the masked entries explicitly to avoid tiny leakage
        alpha = alpha * mask
        denom = alpha.sum(axis=1, keepdims=True) + 1e-12
        alpha = alpha / denom
        return F.elu(alpha @ wh)
