"""GRU cell — substrate for VRDAG's recurrence state updater (§III-D)."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.autodiff import Tensor, functional as F
from repro.autodiff.tape import tape_for
from repro.nn.module import Module, Parameter
from repro.nn import init


class GRUCell(Module):
    """Single-step gated recurrent unit.

    Operates row-wise, so feeding an ``(N, input_size)`` batch of node
    features and an ``(N, hidden_size)`` batch of node states performs
    the per-node hidden-state update of Algorithm 1 line 7 in one call.

    Update equations (standard GRU):

    .. math::
        r = \\sigma(x W_{xr} + h W_{hr} + b_r) \\\\
        z = \\sigma(x W_{xz} + h W_{hz} + b_z) \\\\
        n = \\tanh(x W_{xn} + (r \\odot h) W_{hn} + b_n) \\\\
        h' = (1 - z) \\odot n + z \\odot h
    """

    def __init__(
        self,
        input_size: int,
        hidden_size: int,
        rng: Optional[np.random.Generator] = None,
    ):
        super().__init__()
        rng = rng or np.random.default_rng()
        self.input_size = input_size
        self.hidden_size = hidden_size
        self.w_xr = Parameter(init.xavier_uniform(rng, input_size, hidden_size))
        self.w_hr = Parameter(init.xavier_uniform(rng, hidden_size, hidden_size))
        self.b_r = Parameter(np.zeros(hidden_size))
        self.w_xz = Parameter(init.xavier_uniform(rng, input_size, hidden_size))
        self.w_hz = Parameter(init.xavier_uniform(rng, hidden_size, hidden_size))
        self.b_z = Parameter(np.zeros(hidden_size))
        self.w_xn = Parameter(init.xavier_uniform(rng, input_size, hidden_size))
        self.w_hn = Parameter(init.xavier_uniform(rng, hidden_size, hidden_size))
        self.b_n = Parameter(np.zeros(hidden_size))

    def forward(self, x: Tensor, h: Tensor) -> Tensor:
        """One GRU step: returns the next hidden state ``(N, H)``.

        On the tape engine the full step is one fused ``gru_cell``
        record (three gates + convex combination, one VJP kernel).
        """
        tape = tape_for(x, h)
        if tape is not None:
            return tape.apply(
                "gru_cell",
                (
                    x, h,
                    self.w_xr, self.w_hr, self.b_r,
                    self.w_xz, self.w_hz, self.b_z,
                    self.w_xn, self.w_hn, self.b_n,
                ),
            )
        r = F.sigmoid(x @ self.w_xr + h @ self.w_hr + self.b_r)
        z = F.sigmoid(x @ self.w_xz + h @ self.w_hz + self.b_z)
        n = F.tanh(x @ self.w_xn + (r * h) @ self.w_hn + self.b_n)
        return (1.0 - z) * n + z * h
