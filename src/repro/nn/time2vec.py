"""Time2Vec embedding (Kazemi et al., 2019) — paper Eq. 13.

Maps a scalar timestep ``t`` to a ``d_T``-dimensional vector whose first
coordinate is a learnable linear trend and whose remaining coordinates
are learnable sinusoids, letting the recurrence capture both periodic
and non-periodic temporal patterns.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.autodiff import Tensor, functional as F
from repro.autodiff.tensor import as_tensor
from repro.autodiff.tape import Variable, tape_for
from repro.nn.module import Module, Parameter


class Time2Vec(Module):
    """Learnable time representation ``f_T(t) ∈ R^{d_T}``."""

    def __init__(self, dim: int, rng: Optional[np.random.Generator] = None):
        super().__init__()
        if dim < 1:
            raise ValueError("Time2Vec dimension must be >= 1")
        rng = rng or np.random.default_rng()
        self.dim = dim
        self.w = Parameter(rng.normal(0.0, 1.0, size=dim))
        self.phi = Parameter(rng.normal(0.0, 1.0, size=dim))

    def forward(self, t: float) -> Tensor:
        """Embed scalar time ``t``; returns a ``(dim,)`` tensor."""
        tape = tape_for()
        if tape is not None:
            raw = tape.lift(self.w) * float(t) + tape.lift(self.phi)
        else:
            raw = self.w * as_tensor(float(t)) + self.phi
        if self.dim == 1:
            return raw
        linear = raw[0:1]
        periodic = _sin(raw[1:])
        return F.concat([linear, periodic], axis=0)


def _sin(x: Tensor) -> Tensor:
    if isinstance(x, Variable):
        return x.tape.apply("sin", (x,))
    data = np.sin(x.data)
    cos = np.cos(x.data)
    return Tensor._from_op(data, (x,), (lambda g: g * cos,), "sin")
