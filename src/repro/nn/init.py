"""Weight initialization schemes."""

from __future__ import annotations

import numpy as np


def xavier_uniform(rng: np.random.Generator, fan_in: int, fan_out: int) -> np.ndarray:
    """Glorot/Xavier uniform init for a ``(fan_in, fan_out)`` matrix."""
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=(fan_in, fan_out))


def kaiming_uniform(
    rng: np.random.Generator, fan_in: int, fan_out: int, negative_slope: float = 0.2
) -> np.ndarray:
    """He/Kaiming uniform init, suited to (leaky-)ReLU layers."""
    gain = np.sqrt(2.0 / (1.0 + negative_slope**2))
    limit = gain * np.sqrt(3.0 / fan_in)
    return rng.uniform(-limit, limit, size=(fan_in, fan_out))


def zeros(*shape: int) -> np.ndarray:
    """All-zero array of the given shape."""
    return np.zeros(shape)


def normal(rng: np.random.Generator, *shape: int, std: float = 0.02) -> np.ndarray:
    """Gaussian init with the given standard deviation."""
    return rng.normal(0.0, std, size=shape)
