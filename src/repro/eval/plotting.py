"""Dependency-free text plotting for the figure benches.

The paper's Figures 4–8 are line plots of difference-vs-timestep
series; without matplotlib available offline, the benches render them
as unicode spark-lines and aligned multi-series text charts so the
*shape* comparison (does VRDAG's line hug the original's?) survives in
a terminal and in ``benchmarks/results/``.
"""

from __future__ import annotations

from typing import Dict, Sequence

import numpy as np

_TICKS = "▁▂▃▄▅▆▇█"


def sparkline(values: Sequence[float]) -> str:
    """Render a numeric series as a unicode spark-line."""
    arr = np.asarray(list(values), dtype=np.float64)
    if arr.size == 0:
        return ""
    finite = arr[np.isfinite(arr)]
    if finite.size == 0:
        return "·" * arr.size
    lo, hi = float(finite.min()), float(finite.max())
    span = hi - lo
    chars = []
    for v in arr:
        if not np.isfinite(v):
            chars.append("·")
            continue
        if span <= 0:
            chars.append(_TICKS[0])
        else:
            idx = int((v - lo) / span * (len(_TICKS) - 1))
            chars.append(_TICKS[idx])
    return "".join(chars)


def series_chart(series: Dict[str, Sequence[float]], width: int = 12) -> str:
    """Multi-series text chart: one labelled spark-line per series,
    sharing a global scale so the lines are visually comparable."""
    all_vals = np.concatenate(
        [np.asarray(list(v), dtype=np.float64) for v in series.values()]
    )
    finite = all_vals[np.isfinite(all_vals)]
    lo = float(finite.min()) if finite.size else 0.0
    hi = float(finite.max()) if finite.size else 1.0
    span = hi - lo if hi > lo else 1.0

    lines = []
    for name, values in series.items():
        arr = np.asarray(list(values), dtype=np.float64)
        chars = []
        for v in arr:
            if not np.isfinite(v):
                chars.append("·")
            else:
                chars.append(_TICKS[int((v - lo) / span * (len(_TICKS) - 1))])
        lines.append(f"{name:<{width}s} {''.join(chars)}  "
                     f"[{arr.min():.3f}, {arr.max():.3f}]")
    return "\n".join(lines)
