"""Timed generator runs + the generator registry used by all benches."""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional

from repro.baselines import GraphGenerator
from repro.core import TrainConfig, VRDAG, VRDAGConfig, VRDAGTrainer
from repro.core.schedule import LinearWarmup
from repro.graph import DynamicAttributedGraph
from repro.graph.store import track_dense_materializations
from repro.profiling import profiler


class VRDAGGenerator(GraphGenerator):
    """Adapts VRDAG to the common fit/generate protocol."""

    #: the trained model is re-encoded via the persistence helpers in
    #: :meth:`get_state`; the train result is fit-time telemetry only
    _STATE_EXCLUDE = ("model", "train_result")

    def __init__(
        self,
        epochs: int = 15,
        hidden_dim: int = 24,
        latent_dim: int = 12,
        encode_dim: int = 24,
        mixture_components: int = 3,
        bidirectional: bool = True,
        attr_loss: str = "sce",
        learning_rate: float = 5e-3,
        correlated_noise: bool = True,
        kl_warmup_epochs: int = 0,
        engine: str = "tape",
        seed: int = 0,
    ):
        super().__init__(seed)
        self.epochs = epochs
        self.hidden_dim = hidden_dim
        self.latent_dim = latent_dim
        self.encode_dim = encode_dim
        self.mixture_components = mixture_components
        self.bidirectional = bidirectional
        self.attr_loss = attr_loss
        self.learning_rate = learning_rate
        #: AR(1)-correlated generation noise (ablation: False = white)
        self.correlated_noise = correlated_noise
        #: KL annealing warmup length (0 = constant weight, the default)
        self.kl_warmup_epochs = kl_warmup_epochs
        #: autodiff engine for training ("tape" or "legacy")
        self.engine = engine
        self.model: Optional[VRDAG] = None
        self.train_result = None

    def fit(self, graph: DynamicAttributedGraph) -> "VRDAGGenerator":
        """Build and train a VRDAG sized to ``graph``."""
        cfg = VRDAGConfig(
            num_nodes=graph.num_nodes,
            num_attributes=graph.num_attributes,
            hidden_dim=self.hidden_dim,
            latent_dim=self.latent_dim,
            encode_dim=self.encode_dim,
            mixture_components=self.mixture_components,
            bidirectional=self.bidirectional,
            attr_loss=self.attr_loss,
            seed=self.seed,
        )
        self.model = VRDAG(cfg)
        kl_schedule = (
            LinearWarmup(1.0, self.kl_warmup_epochs)
            if self.kl_warmup_epochs > 0
            else None
        )
        trainer = VRDAGTrainer(
            self.model,
            TrainConfig(
                epochs=self.epochs,
                learning_rate=self.learning_rate,
                kl_schedule=kl_schedule,
                engine=self.engine,
            ),
        )
        self.train_result = trainer.fit(graph)
        if not self.correlated_noise:
            self.model.set_noise_autocorrelation(0.0)
        self.fitted = True
        return self

    def generate(self, num_timesteps: int,
                 seed: Optional[int] = None) -> DynamicAttributedGraph:
        """Algorithm 1 rollout from the trained model."""
        self._require_fitted()
        return self.model.generate(num_timesteps, seed=seed)

    # ------------------------------------------------------------------
    @classmethod
    def from_model(cls, model: VRDAG) -> "VRDAGGenerator":
        """Wrap an already-built (possibly trained) :class:`VRDAG`.

        Training hyperparameters that are not recoverable from the
        model (epochs, learning rate, …) keep their adapter defaults —
        they only matter for a future re-``fit``.
        """
        cfg = model.config
        adapter = cls(
            hidden_dim=cfg.hidden_dim,
            latent_dim=cfg.latent_dim,
            encode_dim=cfg.encode_dim,
            mixture_components=cfg.mixture_components,
            bidirectional=cfg.bidirectional,
            attr_loss=cfg.attr_loss,
            seed=cfg.seed,
        )
        adapter.model = model
        adapter.fitted = True
        return adapter

    def get_state(self):
        """Reflective state plus the full serialized VRDAG."""
        from repro.core.persistence import vrdag_state

        state = super().get_state()
        if self.model is not None:
            state["__model__"] = vrdag_state(self.model)
        return state

    def set_state(self, state) -> None:
        """Restore state, rebuilding the wrapped VRDAG."""
        from repro.core.persistence import vrdag_from_state

        state = dict(state)
        model_state = state.pop("__model__", None)
        super().set_state(state)
        self.model = (
            vrdag_from_state(model_state) if model_state is not None else None
        )
        self.train_result = None


@dataclass
class GeneratorSpec:
    """Named factory in the benchmark registry."""

    name: str
    factory: Callable[[], GraphGenerator]


@dataclass
class TimedRun:
    """Wall-clock results of one fit+generate cycle.

    ``dense_materializations`` counts how many store timesteps were
    densified to ``(N, N)`` matrices across fit + generate.  The walk
    baselines and every generate path keep it at 0; dense-core
    trainers (VRDAG's teacher-forced ELBO is O(N²) by construction)
    materialize at most T cached views of a *store-backed* training
    input — bounded by the input size, never per-epoch, and 0 on
    legacy dense inputs.  The underlying counter is process-global
    (see :func:`track_dense_materializations`), so densifications by
    concurrent threads during the run window would be attributed here.
    """

    name: str
    fit_seconds: float
    generate_seconds: float
    generated: DynamicAttributedGraph
    dense_materializations: int = 0


def make_vrdag(epochs: int = 15, seed: int = 0, **kwargs) -> VRDAGGenerator:
    """Benchmark-scale VRDAG factory."""
    return VRDAGGenerator(epochs=epochs, seed=seed, **kwargs)


def default_generators(seed: int = 0, epochs: int = 15) -> Dict[str, GeneratorSpec]:
    """The Table I comparison set (Dymond included where it fits).

    Factories resolve through the :mod:`repro.api` registry (imported
    lazily — the registry imports this module), so the experiment
    harness and the public API construct identical generators.
    """
    def spec(name: str, **config) -> GeneratorSpec:
        def factory(name=name, config=config) -> GraphGenerator:
            from repro.api import get_generator

            return get_generator(name, seed=seed, **config)

        return GeneratorSpec(name, factory)

    return {
        "GRAN": spec("GRAN"),
        "GenCAT": spec("GenCAT"),
        "TagGen": spec("TagGen"),
        "Dymond": spec("Dymond"),
        "TGGAN": spec("TGGAN"),
        "TIGGER": spec("TIGGER"),
        "VRDAG": spec("VRDAG", epochs=epochs),
    }


def timed_fit_generate(
    name: str,
    generator: GraphGenerator,
    graph: DynamicAttributedGraph,
    num_timesteps: Optional[int] = None,
    seed: int = 0,
) -> TimedRun:
    """Fit then generate, recording wall-clock for each stage.

    The input graph's columnar store is passed end-to-end: generators
    read it through the stream/CSR views and the migrated ones return
    store-backed graphs, so no dense round-trip sits between fit,
    generate and the metric scoring that follows (dense-core trainers
    may densify up to T cached views of a store-backed input — see
    :class:`TimedRun`).  Store→dense materializations across the run
    are counted on the result.
    """
    steps = num_timesteps or graph.num_timesteps
    with track_dense_materializations() as materialized:
        t0 = time.perf_counter()
        with profiler.timer(f"harness.fit.{name}"):
            generator.fit(graph)
        fit_s = time.perf_counter() - t0
        t0 = time.perf_counter()
        with profiler.timer(f"harness.generate.{name}"):
            generated = generator.generate(steps, seed=seed)
        gen_s = time.perf_counter() - t0
    profiler.count(f"harness.dense_materializations.{name}", materialized())
    return TimedRun(
        name=name,
        fit_seconds=fit_s,
        generate_seconds=gen_s,
        generated=generated,
        dense_materializations=materialized(),
    )
