"""Report rendering for experiment results.

The experiment functions in :mod:`repro.eval.experiments` return plain
nested dicts / arrays; this module turns them into markdown tables,
CSV files and the per-experiment sections of ``EXPERIMENTS.md``.

* :func:`markdown_table` / :func:`csv_lines` — low-level formatting.
* :func:`nested_dict_table` — ``{row: {col: value}}`` to a table.
* :func:`series_table` — ``{name: np.ndarray}`` time series to a table
  with one row per timestep (the Figs. 4–8 shape).
* :class:`ExperimentReport` — one paper artifact: id, title, the
  paper's claim, the measured table and a verdict; renders to a
  markdown section.
* :func:`write_markdown_report` — assemble sections into a document.
"""

from __future__ import annotations

import csv
import io
import os
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Union

import numpy as np

Cell = Union[str, float, int]


def format_cell(value: Cell, precision: int = 4) -> str:
    """Human-stable cell formatting: floats rounded, ints verbatim."""
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, (int, np.integer)):
        return str(int(value))
    if isinstance(value, (float, np.floating)):
        if np.isnan(value):
            return "nan"
        if value != 0 and (abs(value) >= 1e4 or abs(value) < 10 ** -precision):
            return f"{value:.{precision - 1}e}"
        return f"{value:.{precision}f}"
    return str(value)


def markdown_table(
    header: Sequence[str],
    rows: Sequence[Sequence[Cell]],
    precision: int = 4,
) -> str:
    """GitHub-flavoured markdown table."""
    if not header:
        raise ValueError("header must not be empty")
    for i, row in enumerate(rows):
        if len(row) != len(header):
            raise ValueError(
                f"row {i} has {len(row)} cells, header has {len(header)}"
            )
    head = "| " + " | ".join(str(h) for h in header) + " |"
    sep = "|" + "|".join("---" for _ in header) + "|"
    body = [
        "| " + " | ".join(format_cell(c, precision) for c in row) + " |"
        for row in rows
    ]
    return "\n".join([head, sep, *body])


def csv_lines(
    header: Sequence[str],
    rows: Sequence[Sequence[Cell]],
    precision: int = 6,
) -> str:
    """RFC-4180 CSV text for the same (header, rows) shape."""
    buf = io.StringIO()
    writer = csv.writer(buf, lineterminator="\n")
    writer.writerow(header)
    for row in rows:
        writer.writerow([format_cell(c, precision) for c in row])
    return buf.getvalue()


def nested_dict_table(
    data: Mapping[str, Mapping[str, Cell]],
    row_label: str = "method",
    columns: Optional[Sequence[str]] = None,
) -> tuple:
    """``{row: {col: value}}`` to ``(header, rows)``.

    Column order follows the first row's insertion order unless
    ``columns`` pins it; missing cells render as ``nan``.
    """
    if not data:
        raise ValueError("empty result dict")
    if columns is None:
        seen: List[str] = []
        for cols in data.values():
            for c in cols:
                if c not in seen:
                    seen.append(c)
        columns = seen
    header = [row_label, *columns]
    rows = [
        [name, *[inner.get(c, float("nan")) for c in columns]]
        for name, inner in data.items()
    ]
    return header, rows


def series_table(
    series: Mapping[str, np.ndarray],
    index_label: str = "timestep",
) -> tuple:
    """``{name: (T,) array}`` to per-timestep ``(header, rows)``.

    Shorter series are padded with ``nan`` (generators may emit one
    fewer difference point than the original).
    """
    if not series:
        raise ValueError("empty series dict")
    names = list(series)
    t_max = max(len(np.atleast_1d(series[n])) for n in names)
    header = [index_label, *names]
    rows = []
    for t in range(t_max):
        row: List[Cell] = [t]
        for n in names:
            arr = np.atleast_1d(series[n])
            row.append(float(arr[t]) if t < len(arr) else float("nan"))
        rows.append(row)
    return header, rows


@dataclass
class ExperimentReport:
    """One paper artifact's reproduction record."""

    experiment_id: str          # e.g. "Table I", "Fig. 4"
    title: str
    paper_claim: str            # what the paper reports (shape)
    measured: str               # markdown table or summary text
    verdict: str                # reproduced / partial / deviation note
    notes: str = ""

    def render(self) -> str:
        """This experiment as a markdown section."""
        lines = [
            f"## {self.experiment_id} — {self.title}",
            "",
            f"**Paper:** {self.paper_claim}",
            "",
            "**Measured:**",
            "",
            self.measured,
            "",
            f"**Verdict:** {self.verdict}",
        ]
        if self.notes:
            lines += ["", f"*Notes:* {self.notes}"]
        return "\n".join(lines)


def write_markdown_report(
    path: Union[str, os.PathLike],
    title: str,
    preamble: str,
    reports: Sequence[ExperimentReport],
) -> None:
    """Assemble experiment sections into one markdown document."""
    doc = [f"# {title}", "", preamble, ""]
    for report in reports:
        doc.append(report.render())
        doc.append("")
    with open(path, "w") as fh:
        fh.write("\n".join(doc))


def summarize_ranking(
    data: Mapping[str, Mapping[str, float]],
    lower_is_better: bool = True,
) -> Dict[str, List[str]]:
    """Per-column ranking of methods (ties broken by dict order).

    Returns ``{column: [best, ..., worst]}`` — the "who wins" shape the
    reproduction compares against the paper's tables.
    """
    header, rows = nested_dict_table(data)
    columns = header[1:]
    out: Dict[str, List[str]] = {}
    for j, col in enumerate(columns, start=1):
        scored = [
            (row[0], float(row[j]))
            for row in rows
            if not np.isnan(float(row[j]))
        ]
        scored.sort(key=lambda kv: kv[1], reverse=not lower_is_better)
        out[col] = [name for name, _ in scored]
    return out


def win_counts(
    data: Mapping[str, Mapping[str, float]],
    lower_is_better: bool = True,
) -> Dict[str, int]:
    """How many columns each method wins (Table I "best results" count)."""
    ranking = summarize_ranking(data, lower_is_better)
    counts: Dict[str, int] = {name: 0 for name in data}
    for order in ranking.values():
        if order:
            counts[order[0]] += 1
    return counts
