"""Per-table / per-figure experiment implementations (§IV).

Every public function regenerates one paper artifact and returns plain
dict/array results; the ``benchmarks/`` suite wraps them in
pytest-benchmark cases and prints the paper-style rows.  Scales are
reduced (pure-Python substrate); the comparison *shape* is the target.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.baselines import AGM, ANC, Dymond, GenCAT, NormalAttributeGenerator
from repro.baselines.dymond import DymondCapacityError
from repro.datasets import load_dataset
from repro.eval.harness import (
    GeneratorSpec,
    TimedRun,
    default_generators,
    make_vrdag,
    timed_fit_generate,
)
from repro.graph import DynamicAttributedGraph
from repro.graph.temporal import TemporalEdgeList
from repro.metrics import (
    attribute_emd,
    attribute_jsd,
    privacy_report,
    spearman_correlation_mae,
    structure_metric_table,
)
from repro.metrics.difference import (
    attribute_difference_series,
    structure_difference_series,
)
from repro.downstream import evaluate_augmentation
from repro.profiling import profiler


# ----------------------------------------------------------------------
# Table I — structure generation quality
# ----------------------------------------------------------------------
def run_table1(
    dataset: str,
    methods: Optional[Sequence[str]] = None,
    scale: float = 0.03,
    seed: int = 0,
    epochs: int = 12,
) -> Dict[str, Dict[str, float]]:
    """One Table I block: {method: {metric: value}} for one dataset."""
    graph = load_dataset(dataset, scale=scale, seed=seed)
    registry = default_generators(seed=seed, epochs=epochs)
    methods = list(methods or registry)
    rows: Dict[str, Dict[str, float]] = {}
    for name in methods:
        spec = registry[name]
        try:
            run = timed_fit_generate(name, spec.factory(), graph, seed=seed + 1)
        except DymondCapacityError:
            continue  # paper: Dymond only runs on the smallest dataset
        with profiler.timer("experiments.structure_metrics"):
            rows[name] = structure_metric_table(graph, run.generated)
    return rows


# ----------------------------------------------------------------------
# Table II — attribute correlation preservation
# ----------------------------------------------------------------------
def run_table2(
    dataset: str, scale: float = 0.03, seed: int = 0, epochs: int = 12
) -> Dict[str, float]:
    """Spearman-correlation MAE for Normal / GenCAT / VRDAG."""
    graph = load_dataset(dataset, scale=scale, seed=seed)
    if graph.num_attributes < 2:
        raise ValueError(f"dataset {dataset} has < 2 attributes")
    out: Dict[str, float] = {}
    for name, gen in [
        ("Normal", NormalAttributeGenerator(seed=seed)),
        ("GenCAT", GenCAT(seed=seed)),
        ("VRDAG", make_vrdag(epochs=epochs, seed=seed)),
    ]:
        run = timed_fit_generate(name, gen, graph, seed=seed + 1)
        out[name] = spearman_correlation_mae(graph, run.generated)
    return out


# ----------------------------------------------------------------------
# Fig. 3 — attribute distribution fidelity
# ----------------------------------------------------------------------
def run_fig3(
    dataset: str,
    scale: float = 0.03,
    seed: int = 0,
    epochs: int = 12,
    include_related_work: bool = False,
) -> Dict[str, Dict[str, float]]:
    """JSD and EMD for VRDAG / GenCAT / Normal on one dataset.

    ``include_related_work`` adds the AGM and ANC static attributed
    baselines from §V (not in the paper's figure; extra reference
    points for the attribute evaluation).
    """
    graph = load_dataset(dataset, scale=scale, seed=seed)
    out: Dict[str, Dict[str, float]] = {}
    comparisons = [
        ("VRDAG", make_vrdag(epochs=epochs, seed=seed)),
        ("GenCAT", GenCAT(seed=seed)),
        ("Normal", NormalAttributeGenerator(seed=seed)),
    ]
    if include_related_work:
        comparisons += [("AGM", AGM(seed=seed)), ("ANC", ANC(seed=seed))]
    for name, gen in comparisons:
        run = timed_fit_generate(name, gen, graph, seed=seed + 1)
        out[name] = {
            "jsd": attribute_jsd(graph, run.generated),
            "emd": attribute_emd(graph, run.generated),
        }
    return out


# ----------------------------------------------------------------------
# Figs. 4–8 — temporal difference series
# ----------------------------------------------------------------------
def run_difference_figure(
    dataset: str,
    metric: str,
    kind: str = "structure",
    scale: float = 0.03,
    seed: int = 0,
    epochs: int = 12,
    include_tigger: bool = True,
) -> Dict[str, np.ndarray]:
    """Difference-vs-timestep series for Original / VRDAG (/ TIGGER).

    ``kind='structure'`` with metric in {degree, clustering, coreness}
    reproduces Figs. 4–6; ``kind='attribute'`` with metric in
    {mae, rmse} reproduces Figs. 7–8 (original vs VRDAG only, as in the
    paper — no attributed dynamic baseline exists).
    """
    graph = load_dataset(dataset, scale=scale, seed=seed)
    series_fn = (
        (lambda g: structure_difference_series(g, metric))
        if kind == "structure"
        else (lambda g: attribute_difference_series(g, metric))
    )
    out: Dict[str, np.ndarray] = {"Original": series_fn(graph)}
    vrdag_run = timed_fit_generate(
        "VRDAG", make_vrdag(epochs=epochs, seed=seed), graph, seed=seed + 1
    )
    out["VRDAG"] = series_fn(vrdag_run.generated)
    if kind == "structure" and include_tigger:
        from repro.baselines import TIGGER

        tig_run = timed_fit_generate("TIGGER", TIGGER(seed=seed), graph, seed=seed + 1)
        out["TIGGER"] = series_fn(tig_run.generated)
    return out


# ----------------------------------------------------------------------
# Fig. 9 — efficiency
# ----------------------------------------------------------------------
def run_fig9_times(
    dataset: str,
    methods: Optional[Sequence[str]] = None,
    scale: float = 0.03,
    seed: int = 0,
    epochs: int = 10,
) -> Dict[str, Dict[str, float]]:
    """Train/test wall-clock per method on one dataset (Fig. 9a,b)."""
    graph = load_dataset(dataset, scale=scale, seed=seed)
    registry = default_generators(seed=seed, epochs=epochs)
    methods = list(methods or ["VRDAG", "TIGGER", "TGGAN", "TagGen"])
    out: Dict[str, Dict[str, float]] = {}
    for name in methods:
        run = timed_fit_generate(name, registry[name].factory(), graph, seed=seed + 1)
        out[name] = {"train": run.fit_seconds, "test": run.generate_seconds}
    return out


def run_fig9_timestep_sweep(
    dataset: str = "bitcoin",
    timesteps: Sequence[int] = (5, 15, 25, 35),
    methods: Optional[Sequence[str]] = None,
    scale: float = 0.03,
    seed: int = 0,
    epochs: int = 8,
) -> Dict[str, Dict[int, Dict[str, float]]]:
    """Running time vs sequence length on Bitcoin (Fig. 9c,d)."""
    registry = default_generators(seed=seed, epochs=epochs)
    methods = list(methods or ["VRDAG", "TIGGER", "TGGAN", "TagGen"])
    out: Dict[str, Dict[int, Dict[str, float]]] = {m: {} for m in methods}
    for t_len in timesteps:
        graph = load_dataset(dataset, scale=scale, seed=seed, num_timesteps=t_len)
        for name in methods:
            run = timed_fit_generate(
                name, registry[name].factory(), graph, num_timesteps=t_len,
                seed=seed + 1,
            )
            out[name][t_len] = {
                "train": run.fit_seconds, "test": run.generate_seconds
            }
    return out


# ----------------------------------------------------------------------
# Tables III/IV — scalability against temporal edge count
# ----------------------------------------------------------------------
def run_scalability_sweep(
    edge_counts: Sequence[int] = (200, 1000, 4000),
    methods: Optional[Sequence[str]] = None,
    dataset: str = "gdelt",
    scale: float = 0.04,
    seed: int = 0,
    epochs: int = 8,
) -> Dict[str, Dict[int, Dict[str, float]]]:
    """Train/generate time vs #temporal edges sampled from GDELT.

    Mirrors Tables III/IV at reduced absolute sizes (the paper sweeps
    1k→500k on native code; we sweep a geometric range with the same
    relative span semantics).
    """
    base = load_dataset(dataset, scale=scale, seed=seed)
    stream = TemporalEdgeList.from_dynamic_graph(base)
    rng = np.random.default_rng(seed)
    registry = default_generators(seed=seed, epochs=epochs)
    methods = list(methods or ["TagGen", "TGGAN", "TIGGER", "VRDAG"])
    out: Dict[str, Dict[int, Dict[str, float]]] = {m: {} for m in methods}
    attrs = base.attribute_tensor()
    for count in edge_counts:
        with profiler.timer("experiments.scalability.subsample"):
            sub = stream.subsample(count, rng).to_dynamic_graph(attributes=attrs)
        for name in methods:
            run = timed_fit_generate(
                name, registry[name].factory(), sub, seed=seed + 1
            )
            out[name][count] = {
                "train": run.fit_seconds, "test": run.generate_seconds
            }
    return out


# ----------------------------------------------------------------------
# Fig. 10 — downstream augmentation case study
# ----------------------------------------------------------------------
def run_fig10(
    dataset: str,
    scale: float = 0.03,
    seed: int = 0,
    vrdag_epochs: int = 12,
    downstream_epochs: int = 20,
    n_runs: int = 3,
) -> Dict[str, Dict[str, float]]:
    """Link-pred F1 / attr-pred RMSE: no-aug vs GenCAT-aug vs VRDAG-aug.

    Results are averaged over ``n_runs`` downstream training runs
    (different seeds), following the paper's 5-run averaging protocol.
    """
    graph = load_dataset(dataset, scale=scale, seed=seed)
    synthetic = {
        "NoAugmentation": None,
        "GenCAT": timed_fit_generate(
            "GenCAT", GenCAT(seed=seed), graph, seed=seed + 1
        ).generated,
        "VRDAG": timed_fit_generate(
            "VRDAG", make_vrdag(epochs=vrdag_epochs, seed=seed), graph,
            seed=seed + 1,
        ).generated,
    }
    out: Dict[str, Dict[str, float]] = {}
    for name, aug in synthetic.items():
        f1s, rmses = [], []
        for run_idx in range(n_runs):
            res = evaluate_augmentation(
                graph, aug, epochs=downstream_epochs, seed=seed + run_idx
            )
            f1s.append(res.f1)
            rmses.append(res.rmse)
        out[name] = {"f1": float(np.mean(f1s)), "rmse": float(np.mean(rmses))}
    return out


# ----------------------------------------------------------------------
# Extension — privacy / leakage audit (not a paper artifact)
# ----------------------------------------------------------------------
def run_privacy_audit(
    dataset: str, scale: float = 0.03, seed: int = 0, epochs: int = 12
) -> Dict[str, Dict[str, float]]:
    """Leakage audit of release candidates (§I anonymization motivation).

    Compares three "releases" of a private graph: an identity copy (the
    worst case — everything leaks), a GenCAT draw, and a VRDAG draw.
    Reports the :func:`repro.metrics.privacy_report` checks for each;
    the paper asserts anonymization qualitatively, this experiment
    quantifies it.
    """
    graph = load_dataset(dataset, scale=scale, seed=seed)
    candidates = {
        "IdentityCopy": graph.copy(),
        "GenCAT": timed_fit_generate(
            "GenCAT", GenCAT(seed=seed), graph, seed=seed + 1
        ).generated,
        "VRDAG": timed_fit_generate(
            "VRDAG", make_vrdag(epochs=epochs, seed=seed), graph, seed=seed + 1
        ).generated,
    }
    return {
        name: privacy_report(graph, release)
        for name, release in candidates.items()
    }


# ----------------------------------------------------------------------
# Extension — engine-benchmarking workload profile (not a paper artifact)
# ----------------------------------------------------------------------
def run_workload_profile(
    dataset: str,
    scale: float = 0.03,
    seed: int = 0,
    epochs: int = 12,
    num_queries: int = 500,
) -> Dict[str, Dict[str, float]]:
    """Per-class result cardinalities: private graph vs synthetic twin.

    The §I engine-benchmarking recipe only works if a workload run on
    the synthetic twin exercises the engine like the private graph
    would.  Returns ``{"private": {...}, "synthetic": {...}}`` mean
    result sizes per query class under one shared workload spec.
    """
    from repro.workloads import (
        GraphQueryEngine,
        WorkloadConfig,
        WorkloadGenerator,
        execute_workload,
    )

    graph = load_dataset(dataset, scale=scale, seed=seed)
    synthetic = timed_fit_generate(
        "VRDAG", make_vrdag(epochs=epochs, seed=seed), graph, seed=seed + 1
    ).generated
    config = WorkloadConfig(num_queries=num_queries, seed=seed + 7)
    out: Dict[str, Dict[str, float]] = {}
    for name, g in [("private", graph), ("synthetic", synthetic)]:
        report = execute_workload(
            GraphQueryEngine(g), WorkloadGenerator(g, config).generate()
        )
        out[name] = dict(report.mean_result_size)
    return out


# ----------------------------------------------------------------------
# Appendix A-F — parameter analysis
# ----------------------------------------------------------------------
def run_parameter_analysis(
    dataset: str = "email",
    scale: float = 0.03,
    seed: int = 0,
    epochs: int = 10,
) -> Dict[str, Dict[str, float]]:
    """Sweep the key hyperparameters (d_z, d_h, K) as in Appendix A-F.

    For each setting, reports the in-degree distribution MMD, the
    attribute JSD, and the number of model parameters — the quality/
    capacity trade-off curves of the paper's parameter study.
    """
    graph = load_dataset(dataset, scale=scale, seed=seed)
    sweeps = {
        "latent_dim=4": dict(latent_dim=4),
        "latent_dim=12": dict(latent_dim=12),
        "latent_dim=24": dict(latent_dim=24),
        "hidden_dim=12": dict(hidden_dim=12, encode_dim=12),
        "hidden_dim=24": dict(hidden_dim=24, encode_dim=24),
        "hidden_dim=48": dict(hidden_dim=48, encode_dim=48),
        "K=1": dict(mixture_components=1),
        "K=3": dict(mixture_components=3),
        "K=6": dict(mixture_components=6),
    }
    out: Dict[str, Dict[str, float]] = {}
    for name, overrides in sweeps.items():
        gen = make_vrdag(epochs=epochs, seed=seed, **overrides)
        run = timed_fit_generate(name, gen, graph, seed=seed + 1)
        out[name] = {
            "in_deg_dist": structure_metric_table(graph, run.generated)[
                "in_deg_dist"
            ],
            "attr_jsd": attribute_jsd(graph, run.generated),
            "params": float(gen.model.num_parameters()),
            "train_s": run.fit_seconds,
        }
    return out


# ----------------------------------------------------------------------
# Appendix ablation
# ----------------------------------------------------------------------
def run_ablation(
    dataset: str = "email", scale: float = 0.03, seed: int = 0, epochs: int = 12
) -> Dict[str, Dict[str, float]]:
    """Ablate bi-flow encoding, mixture size K, and the SCE loss."""
    graph = load_dataset(dataset, scale=scale, seed=seed)
    variants = {
        "full": dict(),
        "uni_flow": dict(bidirectional=False),
        "K1": dict(mixture_components=1),
        "mse_attr": dict(attr_loss="mse"),
        "white_noise": dict(correlated_noise=False),
        "kl_warmup": dict(kl_warmup_epochs=max(epochs // 2, 1)),
    }
    out: Dict[str, Dict[str, float]] = {}
    for name, overrides in variants.items():
        gen = make_vrdag(epochs=epochs, seed=seed, **overrides)
        run = timed_fit_generate(name, gen, graph, seed=seed + 1)
        metrics = structure_metric_table(graph, run.generated)
        metrics["attr_jsd"] = attribute_jsd(graph, run.generated)
        metrics["attr_diff_err"] = float(
            np.abs(
                attribute_difference_series(graph, "mae")
                - attribute_difference_series(run.generated, "mae")
            ).mean()
        )
        out[name] = metrics
    return out
