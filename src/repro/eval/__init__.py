"""Evaluation harness (§IV): one entry point per paper table/figure.

:mod:`repro.eval.harness` provides timed fit/generate wrappers and the
generator registry; :mod:`repro.eval.experiments` implements the
experiment functions that the ``benchmarks/`` suite and
``EXPERIMENTS.md`` generation both call; :mod:`repro.eval.reporting`
renders results to markdown/CSV tables and experiment reports.
"""

from repro.eval.harness import (
    GeneratorSpec,
    TimedRun,
    default_generators,
    make_vrdag,
    timed_fit_generate,
)
from repro.eval import experiments, reporting

__all__ = [
    "GeneratorSpec",
    "TimedRun",
    "default_generators",
    "make_vrdag",
    "timed_fit_generate",
    "experiments",
    "reporting",
]
