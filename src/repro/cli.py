"""Command-line interface, built on the :mod:`repro.api` facade.

Any registered generator can be trained, saved, loaded and served by
name; ``run`` executes a whole dataset × generator × metrics pipeline
from one JSON config.

Examples
--------
::

    python -m repro.cli list-datasets
    python -m repro.cli list-generators
    python -m repro.cli train --dataset email --generator VRDAG \
        --scale 0.03 --epochs 25 --model-out /tmp/vrdag_email.npz
    python -m repro.cli train --dataset email --generator TagGen \
        --generator-config '{"walk_length": 10}' --model-out /tmp/taggen.npz
    python -m repro.cli generate --model /tmp/vrdag_email.npz \
        --timesteps 14 --out /tmp/synthetic.npz --shards 4 --executor process
    python -m repro.cli run --config examples/run_config.json
    python -m repro.cli ingest --events /tmp/events.npz \
        --out /tmp/graph.npz --memory-budget-mb 64
    python -m repro.cli experiment --name table1 --dataset email
    python -m repro.cli compare --original a.npz --synthetic b.npz --json
    python -m repro.cli bench-queries --graph /tmp/graph.npz \
        --num-queries 2000 --batch-size 256 --executor thread --json
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.datasets import list_datasets, load_dataset
from repro.eval import experiments as E
from repro.graph import io as graph_io

_EXPERIMENTS = {
    "table1": lambda a: E.run_table1(a.dataset, scale=a.scale, epochs=a.epochs),
    "table2": lambda a: E.run_table2(a.dataset, scale=a.scale, epochs=a.epochs),
    "fig3": lambda a: E.run_fig3(a.dataset, scale=a.scale, epochs=a.epochs),
    "fig9": lambda a: E.run_fig9_times(a.dataset, scale=a.scale, epochs=a.epochs),
    "fig10": lambda a: E.run_fig10(
        a.dataset, scale=a.scale, vrdag_epochs=a.epochs
    ),
    "ablation": lambda a: E.run_ablation(a.dataset, scale=a.scale, epochs=a.epochs),
    "privacy": lambda a: E.run_privacy_audit(
        a.dataset, scale=a.scale, epochs=a.epochs
    ),
    "workload": lambda a: E.run_workload_profile(
        a.dataset, scale=a.scale, epochs=a.epochs
    ),
}


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="VRDAG reproduction toolkit"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list-datasets", help="list dataset twins")

    sub.add_parser(
        "list-generators",
        help="list every generator in the repro.api registry",
    )

    train = sub.add_parser(
        "train", help="fit any registered generator on a dataset twin"
    )
    train.add_argument("--dataset", required=True, choices=list_datasets())
    train.add_argument(
        "--generator", default="VRDAG",
        help="registry name (see list-generators); default VRDAG",
    )
    train.add_argument(
        "--generator-config", default=None,
        help="JSON object of constructor kwargs for the generator",
    )
    train.add_argument("--scale", type=float, default=0.03)
    train.add_argument("--seed", type=int, default=0)
    train.add_argument(
        "--epochs", type=int, default=25,
        help="training epochs (VRDAG only; other generators ignore it "
        "unless set via --generator-config)",
    )
    train.add_argument("--hidden-dim", type=int, default=24,
                       help="VRDAG only")
    train.add_argument("--latent-dim", type=int, default=12,
                       help="VRDAG only")
    train.add_argument(
        "--engine", choices=("tape", "legacy"), default=None,
        help="autodiff engine for net-training generators "
        "(default: the generator's own default, 'tape')",
    )
    train.add_argument(
        "--profile", action="store_true",
        help="run fit under the profiler and print the per-scope "
        "report (includes per-op tape.op.* / tape.vjp.* timers)",
    )
    train.add_argument("--model-out", required=True)

    gen = sub.add_parser(
        "generate", help="generate from any saved generator artifact"
    )
    gen.add_argument("--model", required=True)
    gen.add_argument("--timesteps", type=int, required=True)
    gen.add_argument("--seed", type=int, default=0)
    gen.add_argument("--out", required=True)
    gen.add_argument(
        "--shards", type=int, default=1,
        help="node shards for the VRDAG structure decode "
        "(seed-deterministic: any shard count yields the identical graph)",
    )
    gen.add_argument(
        "--executor", choices=("serial", "thread", "process"),
        default="serial", help="how shards are executed",
    )

    run = sub.add_parser(
        "run",
        help="one-shot fit -> generate -> evaluate pipeline from a "
        "JSON config (see docs/api.md)",
    )
    run.add_argument(
        "--config", required=True,
        help="JSON file with at least dataset and generator keys",
    )
    run.add_argument(
        "--out", default=None,
        help="also write the result JSON to this path",
    )

    ingest = sub.add_parser(
        "ingest",
        help="fold a raw (src, dst, t) event log into a canonical "
        "columnar graph archive under a memory budget",
    )
    ingest.add_argument("--events", required=True,
                        help="event-log npz written by graph.io.save_events")
    ingest.add_argument("--out", required=True)
    ingest.add_argument(
        "--memory-budget-mb", type=float, default=None,
        help="bound on the transient canonicalization working set",
    )
    ingest.add_argument(
        "--checkpoint", default=None,
        help="crash-safe resumable ingestion: persist builder state "
        "here and resume from it if the file exists "
        "(see docs/reliability.md)",
    )
    ingest.add_argument(
        "--checkpoint-every", type=int, default=None,
        help="events between checkpoints (default: one chunk)",
    )

    exp = sub.add_parser("experiment", help="run a paper experiment")
    exp.add_argument("--name", required=True, choices=sorted(_EXPERIMENTS))
    exp.add_argument("--dataset", default="email")
    exp.add_argument("--scale", type=float, default=0.03)
    exp.add_argument("--epochs", type=int, default=12)

    bq = sub.add_parser(
        "bench-queries",
        help="replay a workload query mix through the batched "
        "QueryService and report throughput (see docs/workloads.md)",
    )
    bq.add_argument("--graph", required=True,
                    help="graph archive written by graph.io.save")
    bq.add_argument("--num-queries", type=int, default=1000)
    bq.add_argument("--batch-size", type=int, default=256)
    bq.add_argument(
        "--executor", choices=("serial", "thread", "process"),
        default="thread",
        help="'serial'/'thread' run the single-process QueryService; "
        "'process' runs the multi-process serving tier "
        "(ProcessQueryService: shared-memory store segments + "
        "request router, see docs/workloads.md)",
    )
    bq.add_argument("--workers", type=int, default=None,
                    help="thread-pool width, or worker-process count "
                    "for --executor process (default: cpu count / 2 "
                    "processes)")
    bq.add_argument(
        "--worker-sweep", default=None,
        help="comma-separated worker counts (process executor only): "
        "replay the workload once per count and emit the scaling "
        "curve under 'scaling'",
    )
    bq.add_argument(
        "--verify-single-process", action="store_true",
        help="also run the workload through a single-process serial "
        "QueryService and fail (nonzero exit) unless results are "
        "bit-identical",
    )
    bq.add_argument(
        "--cache-budget-mb", type=float, default=None,
        help="bound on the snapshot-plan cache (default: unbounded)",
    )
    bq.add_argument("--seed", type=int, default=0)
    bq.add_argument(
        "--mix", default=None,
        help="JSON object of query-kind weights (default: the "
        "point-lookup-heavy serving mix)",
    )
    bq.add_argument(
        "--deadline-ms", type=float, default=None,
        help="per-request deadline; expired requests come back as "
        "structured failures (see docs/reliability.md)",
    )
    bq.add_argument(
        "--max-pending", type=int, default=None,
        help="bound on requests in flight; overflow is shed with a "
        "structured overload error instead of queueing",
    )
    bq.add_argument(
        "--compare-per-query", action="store_true",
        help="also run the per-query dispatch baseline and report "
        "the batched speedup",
    )
    bq.add_argument(
        "--live", action="store_true",
        help="replay the archive's events through a LiveStoreBuilder "
        "on a writer thread and serve the workload with "
        "LiveQueryService while ingestion runs; every served batch "
        "reports its pinned epoch (serial/thread executors only, "
        "see docs/workloads.md)",
    )
    bq.add_argument(
        "--live-rate", type=float, default=None,
        help="target sustained ingest rate in events/s for --live "
        "(default: unthrottled)",
    )
    bq.add_argument(
        "--verify-bulk-equivalence", action="store_true",
        help="with --live: re-answer every served batch against a "
        "bulk-built store of its pinned epoch's event prefix and "
        "fail (nonzero exit) on any mismatch",
    )
    bq.add_argument(
        "--json", action="store_true",
        help="machine-readable output: single-line JSON with a status "
        "field; load failures exit nonzero instead of raising",
    )

    cmp_ = sub.add_parser(
        "compare",
        help="fidelity + leakage report between two saved graphs",
    )
    cmp_.add_argument("--original", required=True)
    cmp_.add_argument("--synthetic", required=True)
    cmp_.add_argument(
        "--json", action="store_true",
        help="machine-readable output: single-line JSON with a status "
        "field; load failures exit nonzero instead of raising",
    )

    return parser


def _cmd_train(args) -> int:
    from repro import api
    from repro.profiling import profiler

    config = json.loads(args.generator_config) if args.generator_config else {}
    config.setdefault("seed", args.seed)
    if args.generator == "VRDAG":
        config.setdefault("epochs", args.epochs)
        config.setdefault("hidden_dim", args.hidden_dim)
        config.setdefault("latent_dim", args.latent_dim)
        config.setdefault("encode_dim", args.hidden_dim)
    if args.engine is not None:
        from repro.api.registry import generator_entry

        if "engine" not in generator_entry(args.generator).cls.config_keys():
            print(
                f"train: generator {args.generator!r} does not train "
                "nn modules and has no --engine knob",
                file=sys.stderr,
            )
            return 2
        config["engine"] = args.engine
    generator = api.get_generator(args.generator, **config)

    graph = load_dataset(args.dataset, scale=args.scale, seed=args.seed)
    print(f"fitting {args.generator} on {graph}")
    if args.profile:
        profiler.reset()
        with profiler.enable():
            generator.fit(graph)
        print(profiler.report())
    else:
        generator.fit(graph)
    api.save_artifact(generator, args.model_out)
    result = getattr(generator, "train_result", None)
    if result is not None:
        print(
            f"loss {result.loss_history[0]:.3f} -> {result.final_loss:.3f}; "
            f"artifact saved to {args.model_out}"
        )
    else:
        print(f"fitted; artifact saved to {args.model_out}")
    return 0


def _cmd_generate(args) -> int:
    from repro import api
    from repro.api.pipeline import generate_with_decode

    if api.is_artifact(args.model):
        generator = api.load_artifact(args.model)
    else:  # legacy VRDAG-only model file
        from repro.core.persistence import load_model
        from repro.eval.harness import VRDAGGenerator

        generator = VRDAGGenerator.from_model(load_model(args.model))
    try:
        synthetic = generate_with_decode(
            generator, args.timesteps, args.seed,
            shards=args.shards, executor=args.executor,
        )
    except ValueError as exc:  # e.g. --shards on a non-VRDAG artifact
        print(f"generate: {exc}", file=sys.stderr)
        return 2
    graph_io.save(synthetic, args.out)
    print(f"generated {synthetic} -> {args.out}")
    return 0


def _cmd_run(args) -> int:
    from repro.api import Pipeline

    with open(args.config) as handle:
        config = json.load(handle)
    result = Pipeline.from_dict(config).run()
    payload = json.dumps(result.to_dict(), indent=2)
    print(payload)
    if args.out:
        with open(args.out, "w") as handle:
            handle.write(payload + "\n")
    return 0


def _bench_queries_live(args, graph, mix, budget, deadline_seconds, fail):
    """``bench-queries --live``: query while ingesting, epochs pinned.

    Replays the archive's own event columns timestep-by-timestep
    through a :class:`LiveStoreBuilder` on a writer thread (sealing
    each step, optionally paced by ``--live-rate``) while the main
    thread serves the deterministic workload through a
    :class:`LiveQueryService` — once mid-ingest, then once more at the
    final epoch after the writer joins.  With
    ``--verify-bulk-equivalence`` every served batch is re-answered
    against a bulk-built store of its pinned epoch's event prefix and
    any divergence is a nonzero exit (the ``live-smoke`` CI contract).
    """
    import threading
    import time

    import numpy as np

    from repro.graph.dynamic import DynamicAttributedGraph
    from repro.graph.live import LiveStoreBuilder, snapshot_owned_bytes
    from repro.graph.store import TemporalEdgeStore
    from repro.reliability import ServiceOverloadedError
    from repro.workloads import (
        LiveQueryService,
        QueryRequest,
        WorkloadConfig,
        WorkloadGenerator,
        run_queries_batched,
    )
    from repro.workloads.engine import GraphQueryEngine

    store = graph.store
    n_steps = store.num_timesteps
    offsets = store.offsets
    try:
        config = WorkloadConfig(
            num_queries=args.num_queries, mix=mix, seed=args.seed
        )
        queries = WorkloadGenerator(graph, config).generate()
        if not queries:
            raise ValueError("workload generated no queries")
        requests = [
            QueryRequest(queries[i:i + args.batch_size])
            for i in range(0, len(queries), args.batch_size)
        ]
        builder = LiveStoreBuilder(
            store.num_nodes, n_steps, attributes=store.attributes
        )
        service = LiveQueryService(
            builder,
            executor=args.executor,
            max_workers=args.workers,
            cache_memory_budget_bytes=budget,
            deadline_seconds=deadline_seconds,
            max_pending=args.max_pending,
        )
    except ValueError as exc:
        return fail(str(exc))

    writer_error = []
    writer_stats = {}

    def write():
        start = time.perf_counter()
        try:
            for step in range(n_steps):
                lo, hi = int(offsets[step]), int(offsets[step + 1])
                builder.extend(
                    store.src[lo:hi], store.dst[lo:hi], store.t[lo:hi]
                )
                if args.live_rate is not None:
                    lag = (
                        builder.events_ingested / args.live_rate
                        - (time.perf_counter() - start)
                    )
                    if lag > 0:
                        time.sleep(lag)
                builder.seal_step()
        except Exception as exc:
            writer_error.append(exc)
        finally:
            writer_stats["seconds"] = time.perf_counter() - start

    samples = []  # (epoch, request, result) for every served batch
    live_latencies = []
    final_latencies = []
    shed_batches = 0
    with service:
        writer = threading.Thread(
            target=write, name="live-ingest", daemon=True
        )
        writer.start()
        try:
            for request in requests:
                t0 = time.perf_counter()
                try:
                    epoch, results = service.run_batch([request])
                except ServiceOverloadedError:
                    shed_batches += 1
                    continue
                live_latencies.append(time.perf_counter() - t0)
                samples.append((epoch, request, results[0]))
        finally:
            writer.join()
        if writer_error:
            return fail(f"ingest writer failed: {writer_error[0]}")
        final_epoch = service.refresh()
        _, final_store = builder.snapshot()
        for request in requests:
            t0 = time.perf_counter()
            try:
                epoch, results = service.run_batch([request], refresh=False)
            except ServiceOverloadedError:
                shed_batches += 1
                continue
            final_latencies.append(time.perf_counter() - t0)
            samples.append((epoch, request, results[0]))
        stats = service.plan_cache_stats()
        live = service.live_stats()

    ingest_seconds = writer_stats.get("seconds", 0.0)
    payload = {
        "status": "ok",
        "graph": str(graph.statistics()),
        "mode": "live",
        "queries": len(queries),
        "batch_size": args.batch_size,
        "executor": args.executor,
        "batches_served": len(samples),
        "shed_batches": shed_batches,
        "failed_requests": sum(1 for _, _, r in samples if not r.ok),
        "final_epoch": final_epoch,
        "epochs_served": sorted({e for e, _, _ in samples}),
        "ingest": {
            "events": builder.events_ingested,
            "sealed_events": builder.sealed_events,
            "seconds": ingest_seconds,
            "events_per_s": (
                builder.events_ingested / ingest_seconds
                if ingest_seconds
                else float("inf")
            ),
            "target_rate": args.live_rate,
        },
        "latency": {
            "p50_live_batch_s": (
                float(np.median(live_latencies)) if live_latencies else None
            ),
            "p50_final_epoch_batch_s": (
                float(np.median(final_latencies)) if final_latencies else None
            ),
        },
        "snapshot_owned_bytes": snapshot_owned_bytes(final_store),
        "live": {
            "refreshes": live.refreshes,
            "epoch_advances": live.epoch_advances,
            "stale_refreshes": live.stale_refreshes,
        },
        "plan_cache": {
            "hits": stats.hits,
            "misses": stats.misses,
            "evictions": stats.evictions,
            "invalidations": stats.invalidations,
            "resident_bytes": stats.resident_bytes,
            "bypasses": stats.bypasses,
            "hit_rate": stats.hit_rate,
        },
    }
    if args.verify_bulk_equivalence:
        # re-answer every served batch against a bulk-built store of
        # its pinned epoch's event prefix — the consistency contract
        oracles = {}

        def oracle(epoch):
            engine = oracles.get(epoch)
            if engine is None:
                end = int(offsets[epoch])
                prefix = TemporalEdgeStore(
                    store.num_nodes,
                    n_steps,
                    store.src[:end].copy(),
                    store.dst[:end].copy(),
                    store.t[:end].copy(),
                    store.attributes,
                )
                engine = GraphQueryEngine(
                    DynamicAttributedGraph.from_store(prefix)
                )
                oracles[epoch] = engine
            return engine

        checked = 0
        for epoch, request, result in samples:
            if not result.ok:
                continue
            reference, _ = run_queries_batched(
                oracle(epoch), request.queries
            )
            checked += 1
            if not np.array_equal(result.cardinalities, reference):
                return fail(
                    "bulk-equivalence verification failed: a batch "
                    f"pinned at epoch {epoch} diverged from the "
                    "bulk-built store of that epoch's event prefix"
                )
        payload["verified_bulk_equivalence"] = True
        payload["verified_batches"] = checked
    if args.json:
        print(json.dumps(payload))
    else:
        print(json.dumps(payload, indent=2))
    return 0


def _cmd_bench_queries(args) -> int:
    from repro.workloads import (
        QueryKind,
        QueryService,
        WorkloadConfig,
        execute_workload,
        serving_mix,
    )

    def fail(message: str) -> int:
        if args.json:
            print(json.dumps({"status": "error", "error": message}))
        else:
            print(f"bench-queries: {message}", file=sys.stderr)
        return 2

    try:
        graph = graph_io.load(args.graph)
    except Exception as exc:
        return fail(f"cannot load graph: {exc}")

    mix = serving_mix()
    if args.mix is not None:
        kinds = {k.value: k for k in QueryKind}
        try:
            parsed = json.loads(args.mix)
            if not isinstance(parsed, dict):
                raise ValueError("--mix must be a JSON object")
            mix = {kinds[name]: float(w) for name, w in parsed.items()}
        except KeyError as exc:
            return fail(f"unknown query kind {exc.args[0]!r}")
        except (TypeError, ValueError) as exc:
            return fail(f"invalid --mix: {exc}")
    if graph.num_attributes == 0 and mix.pop(
        QueryKind.ATTRIBUTE_RANGE, None
    ) is not None and not mix:
        return fail(
            "mix is empty after dropping attribute_range (the graph "
            "has no attributes)"
        )
    budget = (
        int(args.cache_budget_mb * 1024 * 1024)
        if args.cache_budget_mb is not None
        else None
    )
    deadline_seconds = (
        args.deadline_ms / 1000.0 if args.deadline_ms is not None else None
    )
    if args.worker_sweep is not None and args.executor != "process":
        return fail("--worker-sweep requires --executor process")
    if args.verify_bulk_equivalence and not args.live:
        return fail("--verify-bulk-equivalence requires --live")
    if args.live_rate is not None and not args.live:
        return fail("--live-rate requires --live")
    if args.live:
        if args.live_rate is not None and args.live_rate <= 0:
            return fail("--live-rate must be positive")
        if args.executor == "process":
            return fail("--live supports --executor serial or thread")
        if args.worker_sweep is not None:
            return fail("--worker-sweep is not supported with --live")
        if args.verify_single_process:
            return fail(
                "--verify-single-process is not supported with --live "
                "(use --verify-bulk-equivalence)"
            )
        if args.compare_per_query:
            return fail("--compare-per-query is not supported with --live")
        return _bench_queries_live(
            args, graph, mix, budget, deadline_seconds, fail
        )

    def make_service(num_workers=None):
        if args.executor == "process":
            from repro.serving import ProcessQueryService

            return ProcessQueryService(
                graph,
                num_workers=num_workers or args.workers or 2,
                cache_memory_budget_bytes=budget,
                deadline_seconds=deadline_seconds,
                max_pending=args.max_pending,
            )
        return QueryService(
            graph,
            executor=args.executor,
            max_workers=args.workers,
            cache_memory_budget_bytes=budget,
            deadline_seconds=deadline_seconds,
            max_pending=args.max_pending,
        )

    try:
        config = WorkloadConfig(
            num_queries=args.num_queries, mix=mix, seed=args.seed
        )
        service = make_service()
    except ValueError as exc:
        return fail(str(exc))
    with service:
        try:
            # workload/config validation (weights, NaN probabilities,
            # batch size, cache budget) surfaces here as ValueError
            report, results = service.run_workload(
                config, batch_size=args.batch_size
            )
        except ValueError as exc:
            return fail(str(exc))
        stats = service.plan_cache_stats()
        payload = {
            "status": "ok",
            "graph": str(graph.statistics()),
            "queries": report.total_queries,
            "seconds": report.total_seconds,
            "qps": report.throughput(),
            "batch_size": args.batch_size,
            "executor": args.executor,
            "per_kind": {
                kind: {
                    "count": report.count_by_kind[kind],
                    "mean_latency_s": report.latency_by_kind[kind],
                    "mean_result_size": report.mean_result_size[kind],
                }
                for kind in sorted(report.count_by_kind)
            },
            "plan_cache": {
                "hits": stats.hits,
                "misses": stats.misses,
                "evictions": stats.evictions,
                "resident_bytes": stats.resident_bytes,
                "bypasses": stats.bypasses,
                "hit_rate": stats.hit_rate,
            },
            "failed_requests": sum(1 for r in results if not r.ok),
        }
        if args.executor == "process":
            payload["workers"] = service.num_workers
            payload["worker_stats"] = service.worker_stats()
            payload["shared_memory"] = service.shared_memory_stats()
        if args.compare_per_query:
            # rerun the identical deterministic query sequence through
            # per-query dispatch (a local engine for the process tier)
            from repro.workloads import WorkloadGenerator

            if args.executor == "process":
                from repro.workloads.engine import GraphQueryEngine

                engine = GraphQueryEngine(graph)
            else:
                engine = service.engine
            queries = WorkloadGenerator(graph, config).generate()
            baseline = execute_workload(engine, queries)
            payload["per_query_qps"] = baseline.throughput()
            payload["batched_speedup"] = (
                baseline.total_seconds / report.total_seconds
                if report.total_seconds
                else float("inf")
            )
        if args.verify_single_process:
            import numpy as np

            with QueryService(graph, executor="serial") as reference:
                ref_report, ref_results = reference.run_workload(
                    config, batch_size=args.batch_size
                )
            if len(results) != len(ref_results):
                return fail(
                    "verification failed: request counts differ "
                    f"({len(results)} vs {len(ref_results)})"
                )
            for i, (got, want) in enumerate(zip(results, ref_results)):
                if not (got.ok and want.ok):
                    return fail(
                        f"verification failed: request {i} did not "
                        "complete on both tiers "
                        f"({got.error or 'ok'} vs {want.error or 'ok'})"
                    )
                if not np.array_equal(
                    got.cardinalities, want.cardinalities
                ):
                    return fail(
                        f"verification failed: request {i} results "
                        "differ from single-process serving"
                    )
            payload["verified_single_process"] = True
            payload["single_process_qps"] = ref_report.throughput()
    if args.worker_sweep is not None:
        try:
            counts = sorted(
                {int(w) for w in args.worker_sweep.split(",") if w.strip()}
            )
            if not counts or any(c < 1 for c in counts):
                raise ValueError
        except ValueError:
            return fail(
                "--worker-sweep must be comma-separated positive ints"
            )
        scaling = []
        for count in counts:
            try:
                with make_service(num_workers=count) as swept:
                    sweep_report, sweep_results = swept.run_workload(
                        config, batch_size=args.batch_size
                    )
            except ValueError as exc:
                return fail(str(exc))
            scaling.append(
                {
                    "workers": count,
                    "qps": sweep_report.throughput(),
                    "seconds": sweep_report.total_seconds,
                    "failed_requests": sum(
                        1 for r in sweep_results if not r.ok
                    ),
                }
            )
        payload["scaling"] = scaling
    if args.json:
        print(json.dumps(payload))
    else:
        print(json.dumps(payload, indent=2))
    return 0


def _cmd_compare(args) -> int:
    from repro.metrics import attribute_jsd, privacy_report, structure_metric_table

    try:
        original = graph_io.load(args.original)
        synthetic = graph_io.load(args.synthetic)
    except Exception as exc:
        if args.json:
            print(json.dumps({"status": "error", "error": str(exc)}))
        else:
            print(f"compare: cannot load graphs: {exc}", file=sys.stderr)
        return 2
    report = {
        "fidelity": structure_metric_table(original, synthetic),
        "privacy": privacy_report(original, synthetic),
    }
    if original.num_attributes:
        report["fidelity"]["attr_jsd"] = attribute_jsd(original, synthetic)
    if args.json:
        print(json.dumps({"status": "ok", **_jsonable(report)}))
    else:
        print(json.dumps(_jsonable(report), indent=2))
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns a process exit code."""
    args = _build_parser().parse_args(argv)

    if args.command == "list-datasets":
        for name in list_datasets():
            print(name)
        return 0

    if args.command == "list-generators":
        from repro import api

        for name in api.list_generators():
            entry = api.generator_entry(name)
            print(f"{name:<22} {entry.description}")
        return 0

    if args.command == "train":
        return _cmd_train(args)

    if args.command == "generate":
        return _cmd_generate(args)

    if args.command == "run":
        return _cmd_run(args)

    if args.command == "ingest":
        budget = (
            int(args.memory_budget_mb * 1024 * 1024)
            if args.memory_budget_mb is not None
            else None
        )
        graph = graph_io.load(
            args.events,
            memory_budget_bytes=budget,
            checkpoint_path=args.checkpoint,
            checkpoint_every_events=args.checkpoint_every,
        )
        graph_io.save(graph, args.out)
        print(f"ingested {graph} -> {args.out}")
        return 0

    if args.command == "experiment":
        result = _EXPERIMENTS[args.name](args)
        print(json.dumps(_jsonable(result), indent=2))
        return 0

    if args.command == "bench-queries":
        return _cmd_bench_queries(args)

    if args.command == "compare":
        return _cmd_compare(args)

    return 1  # pragma: no cover - argparse enforces choices


def _jsonable(value):
    # the one JSON-coercion helper, shared with RunResult.to_dict
    from repro.api.pipeline import _jsonable as coerce

    return coerce(value)


if __name__ == "__main__":
    sys.exit(main())
