"""Command-line interface: run any paper experiment from the shell.

Examples
--------
::

    python -m repro.cli list-datasets
    python -m repro.cli train --dataset email --scale 0.03 --epochs 25 \
        --model-out /tmp/vrdag_email.npz
    python -m repro.cli generate --model /tmp/vrdag_email.npz \
        --timesteps 14 --out /tmp/synthetic.npz --shards 4 --executor process
    python -m repro.cli ingest --events /tmp/events.npz \
        --out /tmp/graph.npz --memory-budget-mb 64
    python -m repro.cli experiment --name table1 --dataset email
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

import numpy as np

from repro.core import TrainConfig, VRDAG, VRDAGConfig, VRDAGTrainer
from repro.core.persistence import load_model, save_model
from repro.datasets import list_datasets, load_dataset
from repro.eval import experiments as E
from repro.graph import io as graph_io
from repro.metrics import attribute_jsd, privacy_report, structure_metric_table

_EXPERIMENTS = {
    "table1": lambda a: E.run_table1(a.dataset, scale=a.scale, epochs=a.epochs),
    "table2": lambda a: E.run_table2(a.dataset, scale=a.scale, epochs=a.epochs),
    "fig3": lambda a: E.run_fig3(a.dataset, scale=a.scale, epochs=a.epochs),
    "fig9": lambda a: E.run_fig9_times(a.dataset, scale=a.scale, epochs=a.epochs),
    "fig10": lambda a: E.run_fig10(
        a.dataset, scale=a.scale, vrdag_epochs=a.epochs
    ),
    "ablation": lambda a: E.run_ablation(a.dataset, scale=a.scale, epochs=a.epochs),
    "privacy": lambda a: E.run_privacy_audit(
        a.dataset, scale=a.scale, epochs=a.epochs
    ),
    "workload": lambda a: E.run_workload_profile(
        a.dataset, scale=a.scale, epochs=a.epochs
    ),
}


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="VRDAG reproduction toolkit"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list-datasets", help="list dataset twins")

    train = sub.add_parser("train", help="train VRDAG on a dataset twin")
    train.add_argument("--dataset", required=True, choices=list_datasets())
    train.add_argument("--scale", type=float, default=0.03)
    train.add_argument("--seed", type=int, default=0)
    train.add_argument("--epochs", type=int, default=25)
    train.add_argument("--hidden-dim", type=int, default=24)
    train.add_argument("--latent-dim", type=int, default=12)
    train.add_argument("--model-out", required=True)

    gen = sub.add_parser("generate", help="generate from a trained model")
    gen.add_argument("--model", required=True)
    gen.add_argument("--timesteps", type=int, required=True)
    gen.add_argument("--seed", type=int, default=0)
    gen.add_argument("--out", required=True)
    gen.add_argument(
        "--shards", type=int, default=1,
        help="node shards for the structure decode (seed-deterministic: "
        "any shard count yields the identical graph)",
    )
    gen.add_argument(
        "--executor", choices=("serial", "thread", "process"),
        default="serial", help="how shards are executed",
    )

    ingest = sub.add_parser(
        "ingest",
        help="fold a raw (src, dst, t) event log into a canonical "
        "columnar graph archive under a memory budget",
    )
    ingest.add_argument("--events", required=True,
                        help="event-log npz written by graph.io.save_events")
    ingest.add_argument("--out", required=True)
    ingest.add_argument(
        "--memory-budget-mb", type=float, default=None,
        help="bound on the transient canonicalization working set",
    )

    exp = sub.add_parser("experiment", help="run a paper experiment")
    exp.add_argument("--name", required=True, choices=sorted(_EXPERIMENTS))
    exp.add_argument("--dataset", default="email")
    exp.add_argument("--scale", type=float, default=0.03)
    exp.add_argument("--epochs", type=int, default=12)

    cmp_ = sub.add_parser(
        "compare",
        help="fidelity + leakage report between two saved graphs",
    )
    cmp_.add_argument("--original", required=True)
    cmp_.add_argument("--synthetic", required=True)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns a process exit code."""
    args = _build_parser().parse_args(argv)

    if args.command == "list-datasets":
        for name in list_datasets():
            print(name)
        return 0

    if args.command == "train":
        graph = load_dataset(args.dataset, scale=args.scale, seed=args.seed)
        print(f"training on {graph}")
        config = VRDAGConfig(
            num_nodes=graph.num_nodes,
            num_attributes=graph.num_attributes,
            hidden_dim=args.hidden_dim,
            latent_dim=args.latent_dim,
            encode_dim=args.hidden_dim,
            seed=args.seed,
        )
        model = VRDAG(config)
        result = VRDAGTrainer(model, TrainConfig(epochs=args.epochs)).fit(graph)
        save_model(model, args.model_out)
        print(
            f"loss {result.loss_history[0]:.3f} -> {result.final_loss:.3f}; "
            f"model saved to {args.model_out}"
        )
        return 0

    if args.command == "generate":
        from repro.generation import generate_sharded

        model = load_model(args.model)
        synthetic = generate_sharded(
            model,
            args.timesteps,
            seed=args.seed,
            n_shards=args.shards,
            executor=args.executor,
        )
        graph_io.save(synthetic, args.out)
        print(f"generated {synthetic} -> {args.out}")
        return 0

    if args.command == "ingest":
        budget = (
            int(args.memory_budget_mb * 1024 * 1024)
            if args.memory_budget_mb is not None
            else None
        )
        graph = graph_io.load(args.events, memory_budget_bytes=budget)
        graph_io.save(graph, args.out)
        print(f"ingested {graph} -> {args.out}")
        return 0

    if args.command == "experiment":
        result = _EXPERIMENTS[args.name](args)
        print(json.dumps(_jsonable(result), indent=2))
        return 0

    if args.command == "compare":
        original = graph_io.load(args.original)
        synthetic = graph_io.load(args.synthetic)
        report = {
            "fidelity": structure_metric_table(original, synthetic),
            "privacy": privacy_report(original, synthetic),
        }
        if original.num_attributes:
            report["fidelity"]["attr_jsd"] = attribute_jsd(original, synthetic)
        print(json.dumps(_jsonable(report), indent=2))
        return 0

    return 1  # pragma: no cover - argparse enforces choices


def _jsonable(value):
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, np.ndarray):
        return [round(float(x), 6) for x in value.ravel()]
    if isinstance(value, (np.floating, float)):
        return round(float(value), 6)
    return value


if __name__ == "__main__":
    sys.exit(main())
