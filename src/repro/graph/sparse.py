"""Sparse adjacency utilities for larger-scale analytics.

The core pipeline uses dense ``(N, N)`` matrices (the MixBernoulli
decoder is inherently O(N²)), but the *analytics* side — degree
sequences, clustering, components — only needs the edge structure.
This module provides a light CSR-style representation plus sparse
implementations of the metrics that dominate at scale, so the metric
suite can score graphs an order of magnitude larger than the generator
itself handles.

All public metrics run as vectorized NumPy kernels over the CSR
arrays; the original per-element Python implementations are kept as
``_reference_*`` methods and serve as the ground truth for the parity
tests in ``tests/graph/test_sparse_parity.py``.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.graph.snapshot import GraphSnapshot


def _ragged_gather_indices(
    starts: np.ndarray, lengths: np.ndarray
) -> np.ndarray:
    """Indices that concatenate ``arr[starts[i]:starts[i]+lengths[i]]``.

    The standard repeat/arange trick: element ``p`` of the output lies
    in segment ``s`` and equals ``starts[s] + (p - lengths[:s].sum())``.
    """
    total = int(lengths.sum())
    if total == 0:
        return np.zeros(0, dtype=np.int64)
    # cumulative-sum formulation: seed each segment boundary with the
    # jump from the previous segment's end to the next start, then one
    # cumsum yields every index (cheaper than variable-count np.repeat)
    keep = lengths > 0
    starts = starts[keep]
    lengths = lengths[keep]
    steps = np.ones(total, dtype=np.int64)
    steps[0] = starts[0]
    bounds = np.cumsum(lengths)[:-1]
    steps[bounds] = starts[1:] - (starts[:-1] + lengths[:-1] - 1)
    return np.cumsum(steps)


class SparseDirectedGraph:
    """CSR-like directed graph: out-edges grouped per source node."""

    def __init__(self, num_nodes: int, edges: np.ndarray):
        """``edges`` is an ``(E, 2)`` int array of (src, dst) pairs."""
        self.num_nodes = int(num_nodes)
        if self.num_nodes < 0:
            raise ValueError("num_nodes must be >= 0")
        edges = np.asarray(edges, dtype=np.int64).reshape(-1, 2)
        if edges.size and (edges.min() < 0 or edges.max() >= self.num_nodes):
            raise ValueError("edge endpoints out of range")
        # One code path for empty and non-empty inputs: drop self-loops,
        # then ``np.unique(axis=0)`` both deduplicates and sorts rows
        # lexicographically by (src, dst) — exactly CSR order.
        edges = edges[edges[:, 0] != edges[:, 1]]
        self._edges = np.unique(edges, axis=0)
        counts = np.bincount(self._edges[:, 0], minlength=self.num_nodes)
        self._offsets = np.concatenate(
            [np.zeros(1, dtype=np.int64), np.cumsum(counts, dtype=np.int64)]
        )
        # lazily built symmetrized CSR view (indptr, indices)
        self._sym_csr: Optional[Tuple[np.ndarray, np.ndarray]] = None
        # lazily built weakly-connected component labels
        self._labels: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    @classmethod
    def from_snapshot(cls, snapshot: GraphSnapshot) -> "SparseDirectedGraph":
        """Build the CSR view of a snapshot (store columns when available)."""
        edges = snapshot.edge_array()  # CSR order, deduplicated
        # unvalidated dense snapshots may carry diagonal entries
        edges = edges[edges[:, 0] != edges[:, 1]]
        return cls.from_sorted_edges(snapshot.num_nodes, edges)

    @classmethod
    def from_sorted_edges(
        cls, num_nodes: int, edges: np.ndarray
    ) -> "SparseDirectedGraph":
        """Adopt an ``(E, 2)`` edge array already in canonical CSR order.

        The caller guarantees rows are sorted by ``(src, dst)``,
        deduplicated and loop-free (e.g. a
        :class:`~repro.graph.store.TemporalEdgeStore` timestep slice);
        skips the O(E log E) ``np.unique`` canonicalization.
        """
        graph = cls.__new__(cls)
        graph.num_nodes = int(num_nodes)
        graph._edges = np.asarray(edges, dtype=np.int64).reshape(-1, 2)
        counts = np.bincount(graph._edges[:, 0], minlength=graph.num_nodes)
        graph._offsets = np.concatenate(
            [np.zeros(1, dtype=np.int64), np.cumsum(counts, dtype=np.int64)]
        )
        graph._sym_csr = None
        graph._labels = None
        return graph

    def edge_array(self) -> np.ndarray:
        """The ``(E, 2)`` canonical edge array, sorted by ``(src, dst)``.

        A view of internal state — treat as read-only.
        """
        return self._edges

    def to_dense(self) -> np.ndarray:
        """Densify back to an ``(N, N)`` 0/1 matrix."""
        adj = np.zeros((self.num_nodes, self.num_nodes))
        if len(self._edges):
            adj[self._edges[:, 0], self._edges[:, 1]] = 1.0
        return adj

    @property
    def num_edges(self) -> int:
        """Number of directed edges."""
        return len(self._edges)

    def out_neighbors(self, node: int) -> np.ndarray:
        """Out-neighbour ids of node ``v`` (CSR row slice, sorted)."""
        lo, hi = self._offsets[node], self._offsets[node + 1]
        return self._edges[lo:hi, 1]

    def has_edge(self, u: int, v: int) -> bool:
        """O(log d) directed edge membership via binary search.

        The CSR row slice of ``u`` is sorted by destination, so a
        ``searchsorted`` over it answers membership without scanning.
        """
        if not (0 <= u < self.num_nodes and 0 <= v < self.num_nodes):
            raise ValueError("edge endpoints out of range")
        row = self.out_neighbors(u)
        pos = int(np.searchsorted(row, v))
        return pos < row.size and int(row[pos]) == v

    # ------------------------------------------------------------------
    def out_degrees(self) -> np.ndarray:
        """Out-degree per node, shape ``(N,)`` (int64 counts)."""
        return np.diff(self._offsets).astype(np.int64)

    def in_degrees(self) -> np.ndarray:
        """In-degree per node, shape ``(N,)`` (int64 counts)."""
        if len(self._edges):
            return np.bincount(
                self._edges[:, 1], minlength=self.num_nodes
            ).astype(np.int64)
        return np.zeros(self.num_nodes, dtype=np.int64)

    # ------------------------------------------------------------------
    # symmetrized structure
    # ------------------------------------------------------------------
    def symmetric_csr(self) -> Tuple[np.ndarray, np.ndarray]:
        """CSR of the symmetrized graph: ``(indptr, indices)``.

        Neighbour lists are sorted and deduplicated; built once and
        cached (all undirected metrics share it).
        """
        if self._sym_csr is None:
            both = np.concatenate([self._edges, self._edges[:, ::-1]], axis=0)
            both = np.unique(both, axis=0)
            counts = np.bincount(both[:, 0], minlength=self.num_nodes)
            indptr = np.concatenate(
                [np.zeros(1, dtype=np.int64), np.cumsum(counts, dtype=np.int64)]
            )
            self._sym_csr = (indptr, np.ascontiguousarray(both[:, 1]))
        return self._sym_csr

    def undirected_neighbor_sets(self) -> List[set]:
        """Per-node neighbour sets of the symmetrized graph."""
        indptr, indices = self.symmetric_csr()
        return [
            set(indices[indptr[i]:indptr[i + 1]].tolist())
            for i in range(self.num_nodes)
        ]

    # ------------------------------------------------------------------
    # vectorized metric kernels
    # ------------------------------------------------------------------
    def _triangle_links(self) -> np.ndarray:
        """Per-node count of connected (ordered) neighbour pairs.

        ``links[i]`` is the number of ordered pairs of neighbours of
        ``i`` that are themselves connected — ``2 ×`` triangles through
        ``i`` — the shared kernel behind clustering coefficients and
        the triangle count.

        Sorted-neighbour triangle counting with no per-node Python
        loop: CSR entries are globally sorted under the composite key
        ``row * N + col``, so "is ``w`` a neighbour of ``v``" for *all*
        wedges ``(u, v, w)`` at once is a single ``searchsorted`` of
        the wedge keys ``v * N + w`` into the CSR key array.  Work is
        O(#wedges · log d), fully vectorized; wedge batches are chunked
        to bound peak memory on heavy-tailed degree sequences.
        """
        indptr, indices = self.symmetric_csr()
        n = self.num_nodes
        deg = np.diff(indptr)
        n_entries = indices.size
        if n_entries == 0:
            return np.zeros(n)
        edge_src = np.repeat(np.arange(n, dtype=np.int64), deg)
        # membership oracle: a dense bool matrix is one fancy-indexed
        # gather per wedge (used while N² bits stay small); beyond that,
        # binary search of composite keys row*N+col over the CSR entries
        use_dense = n * n <= (1 << 24)
        if use_dense:
            member = np.zeros((n, n), dtype=bool)
            member[edge_src, indices] = True
        else:
            csr_keys = edge_src * n + indices  # globally sorted
        # |N(u) ∩ N(v)| is symmetric, so count once per undirected edge
        # (u < v), probing continuations from the *smaller* neighbour
        # list, then scatter the count to both endpoints
        half = edge_src < indices
        h_src = edge_src[half]
        h_dst = indices[half]
        swap = deg[h_dst] < deg[h_src]
        probe = np.where(swap, h_dst, h_src)
        other = np.where(swap, h_src, h_dst)
        lengths_all = deg[probe]
        links = np.zeros(n)
        n_half = h_src.size
        chunk = max(1 << 18, int(deg.max()) + 1)
        query_budget = np.cumsum(lengths_all)
        start = 0
        while start < n_half:
            stop = int(
                np.searchsorted(
                    query_budget, query_budget[start] + chunk, "left"
                )
            )
            stop = min(max(stop, start + 1), n_half)
            e_probe = probe[start:stop]
            e_other = other[start:stop]
            lengths = lengths_all[start:stop]
            wedge_v = np.repeat(e_other, lengths)
            wedge_w = indices[
                _ragged_gather_indices(indptr[e_probe], lengths)
            ]
            if use_dense:
                found = member[wedge_v, wedge_w]
            else:
                queries = wedge_v * n + wedge_w
                pos = np.minimum(
                    np.searchsorted(csr_keys, queries), n_entries - 1
                )
                found = csr_keys[pos] == queries
            eid = np.repeat(np.arange(stop - start), lengths)
            per_edge = np.bincount(eid[found], minlength=stop - start)
            links += np.bincount(
                h_src[start:stop], weights=per_edge, minlength=n
            )
            links += np.bincount(
                h_dst[start:stop], weights=per_edge, minlength=n
            )
            start = stop
        return links

    def clustering_coefficients(self) -> np.ndarray:
        """Local clustering per node on the symmetrized structure."""
        indptr, _ = self.symmetric_csr()
        deg = np.diff(indptr)
        cc = np.zeros(self.num_nodes)
        links = self._triangle_links()
        possible = deg * (deg - 1)
        np.divide(links, possible, out=cc, where=possible > 0)
        return cc

    def triangle_count(self) -> int:
        """Number of undirected triangles (links kernel summed / 6)."""
        return int(round(self._triangle_links().sum() / 6.0))

    def connected_component_labels(self) -> np.ndarray:
        """Weakly-connected component label per node (min node id wins).

        Min-label propagation with pointer jumping (see
        :meth:`connected_component_sizes`); each component ends up
        labelled by its smallest member.  Built once and cached.
        """
        if self._labels is not None:
            return self._labels
        n = self.num_nodes
        labels = np.arange(n, dtype=np.int64)
        if len(self._edges):
            u = self._edges[:, 0]
            v = self._edges[:, 1]
            while True:
                prev = labels.copy()
                np.minimum.at(labels, u, labels[v])
                np.minimum.at(labels, v, labels[u])
                # pointer jumping: labels only ever decrease, so this
                # telescopes chains without changing component identity
                while True:
                    jumped = labels[labels]
                    if np.array_equal(jumped, labels):
                        break
                    labels = jumped
                if np.array_equal(labels, prev):
                    break
        self._labels = labels
        return labels

    def connected_component_sizes(self) -> List[int]:
        """Weakly connected component sizes via min-label propagation.

        Each round pulls the minimum label across every edge
        (``np.minimum.at``) and then pointer-jumps (``labels[labels]``)
        until a fixed point; converges in O(log N) rounds on typical
        graphs with all per-edge work vectorized.
        """
        labels = self.connected_component_labels()
        sizes = np.bincount(labels, minlength=0)
        return sorted((int(s) for s in sizes[sizes > 0]), reverse=True)

    def wedge_count(self) -> int:
        """Number of undirected wedges (2-paths), from the degree vector."""
        indptr, _ = self.symmetric_csr()
        deg = np.diff(indptr)
        return int((deg * (deg - 1) // 2).sum())

    # ------------------------------------------------------------------
    # reference implementations (parity-test ground truth)
    # ------------------------------------------------------------------
    def _reference_undirected_neighbor_sets(self) -> List[set]:
        """Per-node neighbour sets built edge-by-edge (reference)."""
        nbrs: List[set] = [set() for _ in range(self.num_nodes)]
        for u, v in self._edges:
            nbrs[u].add(int(v))
            nbrs[v].add(int(u))
        return nbrs

    def _reference_clustering_coefficients(self) -> np.ndarray:
        """Set-intersection clustering (reference)."""
        nbrs = self._reference_undirected_neighbor_sets()
        cc = np.zeros(self.num_nodes)
        for i, ni in enumerate(nbrs):
            k = len(ni)
            if k < 2:
                continue
            links = 0
            for j in ni:
                links += len(ni & nbrs[j])
            cc[i] = links / (k * (k - 1))
        return cc

    def _reference_connected_component_sizes(self) -> List[int]:
        """Python union-find component sizes (reference)."""
        parent = np.arange(self.num_nodes)

        def find(x: int) -> int:
            root = x
            while parent[root] != root:
                root = parent[root]
            while parent[x] != root:
                parent[x], x = root, parent[x]
            return root

        for u, v in self._edges:
            ru, rv = find(int(u)), find(int(v))
            if ru != rv:
                parent[ru] = rv
        sizes: dict = {}
        for node in range(self.num_nodes):
            root = find(node)
            sizes[root] = sizes.get(root, 0) + 1
        return sorted(sizes.values(), reverse=True)

    def _reference_wedge_count(self) -> int:
        """Neighbour-set wedge count (reference)."""
        nbrs = self._reference_undirected_neighbor_sets()
        return int(sum(len(n) * (len(n) - 1) // 2 for n in nbrs))
