"""Sparse adjacency utilities for larger-scale analytics.

The core pipeline uses dense ``(N, N)`` matrices (the MixBernoulli
decoder is inherently O(N²)), but the *analytics* side — degree
sequences, clustering, components — only needs the edge structure.
This module provides a light CSR-style representation plus sparse
implementations of the metrics that dominate at scale, so the metric
suite can score graphs an order of magnitude larger than the generator
itself handles.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.graph.snapshot import GraphSnapshot


class SparseDirectedGraph:
    """CSR-like directed graph: out-edges grouped per source node."""

    def __init__(self, num_nodes: int, edges: np.ndarray):
        """``edges`` is an ``(E, 2)`` int array of (src, dst) pairs."""
        self.num_nodes = int(num_nodes)
        edges = np.asarray(edges, dtype=np.int64).reshape(-1, 2)
        if edges.size and (edges.min() < 0 or edges.max() >= num_nodes):
            raise ValueError("edge endpoints out of range")
        # drop self-loops, deduplicate
        if edges.size:
            edges = edges[edges[:, 0] != edges[:, 1]]
            edges = np.unique(edges, axis=0)
        order = np.lexsort((edges[:, 1], edges[:, 0])) if edges.size else []
        self._edges = edges[order] if edges.size else edges
        counts = np.bincount(
            self._edges[:, 0], minlength=num_nodes
        ) if edges.size else np.zeros(num_nodes, dtype=np.int64)
        self._offsets = np.concatenate([[0], np.cumsum(counts)])

    # ------------------------------------------------------------------
    @classmethod
    def from_snapshot(cls, snapshot: GraphSnapshot) -> "SparseDirectedGraph":
        """Build the CSR view of a dense snapshot."""
        rows, cols = np.nonzero(snapshot.adjacency)
        return cls(snapshot.num_nodes, np.stack([rows, cols], axis=1))

    def to_dense(self) -> np.ndarray:
        """Densify back to an ``(N, N)`` 0/1 matrix."""
        adj = np.zeros((self.num_nodes, self.num_nodes))
        if len(self._edges):
            adj[self._edges[:, 0], self._edges[:, 1]] = 1.0
        return adj

    @property
    def num_edges(self) -> int:
        """Number of directed edges."""
        return len(self._edges)

    def out_neighbors(self, node: int) -> np.ndarray:
        """Out-neighbour ids of node ``v`` (CSR row slice)."""
        lo, hi = self._offsets[node], self._offsets[node + 1]
        return self._edges[lo:hi, 1]

    # ------------------------------------------------------------------
    def out_degrees(self) -> np.ndarray:
        """Out-degree per node, shape ``(N,)``."""
        return np.diff(self._offsets).astype(np.float64)

    def in_degrees(self) -> np.ndarray:
        """In-degree per node, shape ``(N,)``."""
        deg = np.zeros(self.num_nodes)
        if len(self._edges):
            np.add.at(deg, self._edges[:, 1], 1.0)
        return deg

    def undirected_neighbor_sets(self) -> List[set]:
        """Per-node neighbour sets of the symmetrized graph."""
        nbrs: List[set] = [set() for _ in range(self.num_nodes)]
        for u, v in self._edges:
            nbrs[u].add(int(v))
            nbrs[v].add(int(u))
        return nbrs

    def clustering_coefficients(self) -> np.ndarray:
        """Local clustering per node via neighbour-set intersection."""
        nbrs = self.undirected_neighbor_sets()
        cc = np.zeros(self.num_nodes)
        for i, ni in enumerate(nbrs):
            k = len(ni)
            if k < 2:
                continue
            links = 0
            for j in ni:
                links += len(ni & nbrs[j])
            cc[i] = links / (k * (k - 1))
        return cc

    def connected_component_sizes(self) -> List[int]:
        """Weakly connected component sizes via union-find."""
        parent = np.arange(self.num_nodes)

        def find(x: int) -> int:
            root = x
            while parent[root] != root:
                root = parent[root]
            while parent[x] != root:
                parent[x], x = root, parent[x]
            return root

        for u, v in self._edges:
            ru, rv = find(int(u)), find(int(v))
            if ru != rv:
                parent[ru] = rv
        sizes: dict = {}
        for node in range(self.num_nodes):
            root = find(node)
            sizes[root] = sizes.get(root, 0) + 1
        return sorted(sizes.values(), reverse=True)

    def wedge_count(self) -> int:
        """Number of undirected wedges (2-paths)."""
        nbrs = self.undirected_neighbor_sets()
        return int(sum(len(n) * (len(n) - 1) // 2 for n in nbrs))
