"""Structural graph analytics used throughout the evaluation (§IV-A2).

All functions operate on :class:`~repro.graph.snapshot.GraphSnapshot`
or raw dense adjacency matrices.  Where the paper's metric is defined on
undirected structure (clustering, coreness, components, wedges) the
directed adjacency is symmetrized first, matching standard practice in
the cited metric suites.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from repro.graph.snapshot import GraphSnapshot


# ----------------------------------------------------------------------
# degrees
# ----------------------------------------------------------------------
def in_degree_sequence(snapshot: GraphSnapshot) -> np.ndarray:
    """In-degree sequence of a snapshot, shape ``(N,)``."""
    return snapshot.in_degrees()


def out_degree_sequence(snapshot: GraphSnapshot) -> np.ndarray:
    """Out-degree sequence of a snapshot, shape ``(N,)``."""
    return snapshot.out_degrees()


def degree_histogram(degrees: np.ndarray, max_degree: int | None = None) -> np.ndarray:
    """Normalized degree histogram (a probability vector)."""
    degrees = np.asarray(degrees, dtype=int)
    hi = int(max_degree if max_degree is not None else (degrees.max() if degrees.size else 0))
    hist = np.bincount(degrees, minlength=hi + 1).astype(np.float64)
    total = hist.sum()
    return hist / total if total > 0 else hist


# ----------------------------------------------------------------------
# clustering
# ----------------------------------------------------------------------
def clustering_coefficients(snapshot: GraphSnapshot) -> np.ndarray:
    """Local clustering coefficient per node on symmetrized structure."""
    sym = snapshot.undirected_adjacency()
    deg = sym.sum(axis=1)
    # triangles through node i: (A^3)_{ii} / 2 on simple undirected graphs
    tri = np.diag(sym @ sym @ sym) / 2.0
    possible = deg * (deg - 1) / 2.0
    with np.errstate(divide="ignore", invalid="ignore"):
        cc = np.where(possible > 0, tri / possible, 0.0)
    return cc


def average_clustering(snapshot: GraphSnapshot) -> float:
    """Mean undirected clustering coefficient over all nodes."""
    return float(clustering_coefficients(snapshot).mean())


# ----------------------------------------------------------------------
# wedges / triangles
# ----------------------------------------------------------------------
def wedge_count(snapshot: GraphSnapshot) -> int:
    """Number of wedges (paths of length 2) in the symmetrized graph."""
    sym = snapshot.undirected_adjacency()
    deg = sym.sum(axis=1)
    return int((deg * (deg - 1) / 2.0).sum())


def triangle_count(snapshot: GraphSnapshot) -> int:
    """Number of undirected triangles."""
    sym = snapshot.undirected_adjacency()
    return int(np.round(np.trace(sym @ sym @ sym) / 6.0))


# ----------------------------------------------------------------------
# connected components
# ----------------------------------------------------------------------
def connected_components(snapshot: GraphSnapshot) -> List[np.ndarray]:
    """Weakly connected components (lists of node indices).

    Isolated nodes each form their own singleton component; the paper's
    NC metric counts non-singleton components only when comparing
    generators (isolated nodes dominate otherwise), so we expose both
    via :func:`component_count` flags.
    """
    sym = snapshot.undirected_adjacency()
    n = snapshot.num_nodes
    seen = np.zeros(n, dtype=bool)
    comps: List[np.ndarray] = []
    neighbors = [np.nonzero(sym[i])[0] for i in range(n)]
    for start in range(n):
        if seen[start]:
            continue
        stack = [start]
        seen[start] = True
        comp = []
        while stack:
            node = stack.pop()
            comp.append(node)
            for nb in neighbors[node]:
                if not seen[nb]:
                    seen[nb] = True
                    stack.append(int(nb))
        comps.append(np.array(sorted(comp)))
    return comps


def component_count(snapshot: GraphSnapshot, include_singletons: bool = False) -> int:
    """Number of weakly connected components (singletons optional)."""
    comps = connected_components(snapshot)
    if include_singletons:
        return len(comps)
    return sum(1 for c in comps if len(c) > 1)


def largest_component_size(snapshot: GraphSnapshot) -> int:
    """Node count of the largest weakly connected component."""
    comps = connected_components(snapshot)
    return max(len(c) for c in comps) if comps else 0


# ----------------------------------------------------------------------
# coreness
# ----------------------------------------------------------------------
def coreness(snapshot: GraphSnapshot) -> np.ndarray:
    """k-core number per node (symmetrized), via iterative peeling."""
    sym = snapshot.undirected_adjacency()
    n = snapshot.num_nodes
    deg = sym.sum(axis=1).astype(int)
    core = np.zeros(n, dtype=int)
    alive = np.ones(n, dtype=bool)
    current_deg = deg.copy()
    k = 0
    remaining = n
    while remaining > 0:
        # peel all nodes with degree <= k
        peel = np.nonzero(alive & (current_deg <= k))[0]
        if peel.size == 0:
            k += 1
            continue
        for node in peel:
            core[node] = k
            alive[node] = False
            remaining -= 1
            nbs = np.nonzero(sym[node])[0]
            for nb in nbs:
                if alive[nb]:
                    current_deg[nb] -= 1
    return core


# ----------------------------------------------------------------------
# reciprocity and assortativity
# ----------------------------------------------------------------------
def reciprocity(snapshot: GraphSnapshot) -> float:
    """Fraction of directed edges whose reverse edge also exists.

    Zero for a pure DAG-like network (e.g. guarantee relations), high
    for mutual-interaction networks (e.g. trust graphs).
    """
    adj = snapshot.adjacency
    m = adj.sum()
    if m == 0:
        return 0.0
    return float((adj * adj.T).sum() / m)


def degree_assortativity(snapshot: GraphSnapshot) -> float:
    """Pearson correlation of total degrees across (symmetrized) edges.

    Positive: hubs connect to hubs; negative: hub-and-spoke structure
    (the common social/web regime).  Returns 0 for degenerate inputs.
    """
    sym = snapshot.undirected_adjacency()
    rows, cols = np.nonzero(np.triu(sym, k=1))
    if rows.size < 2:
        return 0.0
    deg = sym.sum(axis=1)
    x = np.concatenate([deg[rows], deg[cols]])
    y = np.concatenate([deg[cols], deg[rows]])
    if x.std() < 1e-12 or y.std() < 1e-12:
        return 0.0
    return float(np.corrcoef(x, y)[0, 1])


# ----------------------------------------------------------------------
# PageRank
# ----------------------------------------------------------------------
def pagerank(
    snapshot: GraphSnapshot,
    damping: float = 0.85,
    tol: float = 1e-9,
    max_iter: int = 200,
) -> np.ndarray:
    """Power-iteration PageRank over the directed snapshot.

    Dangling nodes (out-degree 0) redistribute their mass uniformly,
    the standard convention.  Returns a probability vector of shape
    ``(N,)``; raises ``ValueError`` on an invalid damping factor and
    ``RuntimeError`` if power iteration fails to converge.
    """
    if not 0.0 < damping < 1.0:
        raise ValueError(f"damping must be in (0, 1), got {damping}")
    n = snapshot.num_nodes
    adj = snapshot.adjacency
    out_deg = adj.sum(axis=1)
    dangling = out_deg == 0
    with np.errstate(divide="ignore", invalid="ignore"):
        transition = np.where(out_deg[:, None] > 0, adj / out_deg[:, None], 0.0)
    rank = np.full(n, 1.0 / n)
    teleport = (1.0 - damping) / n
    for _ in range(max_iter):
        dangling_mass = rank[dangling].sum() / n
        new_rank = teleport + damping * (rank @ transition + dangling_mass)
        if np.abs(new_rank - rank).sum() < tol:
            return new_rank
        rank = new_rank
    raise RuntimeError(
        f"PageRank failed to converge within {max_iter} iterations"
    )


# ----------------------------------------------------------------------
# power-law exponent
# ----------------------------------------------------------------------
def power_law_exponent(degrees: np.ndarray, d_min: int = 1) -> float:
    """MLE power-law exponent of a degree sequence (Clauset et al.).

    .. math:: \\hat{\\alpha} = 1 + n \\big/ \\sum_i \\ln(d_i / (d_{min} - 1/2))

    Degrees below ``d_min`` are discarded.  Returns ``nan`` when no
    degree reaches ``d_min`` (e.g. an empty graph).
    """
    d = np.asarray(degrees, dtype=np.float64)
    d = d[d >= d_min]
    if d.size == 0:
        return float("nan")
    logs = np.log(d / (d_min - 0.5))
    s = logs.sum()
    if s <= 0:
        return float("nan")
    return float(1.0 + d.size / s)


# ----------------------------------------------------------------------
# snapshot summary used by the harness
# ----------------------------------------------------------------------
def structure_summary(snapshot: GraphSnapshot) -> Dict[str, float]:
    """All scalar structural properties used in Table I, in one pass."""
    in_deg = in_degree_sequence(snapshot)
    out_deg = out_degree_sequence(snapshot)
    return {
        "in_ple": power_law_exponent(in_deg),
        "out_ple": power_law_exponent(out_deg),
        "wedge_count": float(wedge_count(snapshot)),
        "nc": float(component_count(snapshot)),
        "lcc": float(largest_component_size(snapshot)),
    }
