"""Structural graph analytics used throughout the evaluation (§IV-A2).

All functions operate on :class:`~repro.graph.snapshot.GraphSnapshot`.
Where the paper's metric is defined on undirected structure
(clustering, coreness, components, wedges) the directed adjacency is
symmetrized first, matching standard practice in the cited metric
suites.

Every metric reads the snapshot's cached CSR view
(:meth:`GraphSnapshot.sparse`) — store-backed snapshots are never
densified.  The original dense implementations are kept as
``_reference_*`` functions and pinned to the CSR kernels by the parity
tests in ``tests/graph/test_properties_parity.py``.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro.graph.snapshot import GraphSnapshot


# ----------------------------------------------------------------------
# degrees
# ----------------------------------------------------------------------
def in_degree_sequence(snapshot: GraphSnapshot) -> np.ndarray:
    """In-degree sequence of a snapshot, shape ``(N,)``."""
    return snapshot.in_degrees()


def out_degree_sequence(snapshot: GraphSnapshot) -> np.ndarray:
    """Out-degree sequence of a snapshot, shape ``(N,)``."""
    return snapshot.out_degrees()


def degree_histogram(degrees: np.ndarray, max_degree: int | None = None) -> np.ndarray:
    """Normalized degree histogram (a probability vector)."""
    degrees = np.asarray(degrees, dtype=int)
    hi = int(max_degree if max_degree is not None else (degrees.max() if degrees.size else 0))
    hist = np.bincount(degrees, minlength=hi + 1).astype(np.float64)
    total = hist.sum()
    return hist / total if total > 0 else hist


# ----------------------------------------------------------------------
# clustering
# ----------------------------------------------------------------------
def clustering_coefficients(snapshot: GraphSnapshot) -> np.ndarray:
    """Local clustering coefficient per node on symmetrized structure."""
    return snapshot.sparse().clustering_coefficients()


def average_clustering(snapshot: GraphSnapshot) -> float:
    """Mean undirected clustering coefficient over all nodes."""
    return float(clustering_coefficients(snapshot).mean())


# ----------------------------------------------------------------------
# wedges / triangles
# ----------------------------------------------------------------------
def wedge_count(snapshot: GraphSnapshot) -> int:
    """Number of wedges (paths of length 2) in the symmetrized graph."""
    return snapshot.sparse().wedge_count()


def triangle_count(snapshot: GraphSnapshot) -> int:
    """Number of undirected triangles."""
    return snapshot.sparse().triangle_count()


# ----------------------------------------------------------------------
# connected components
# ----------------------------------------------------------------------
def connected_components(snapshot: GraphSnapshot) -> List[np.ndarray]:
    """Weakly connected components (lists of node indices).

    Isolated nodes each form their own singleton component; the paper's
    NC metric counts non-singleton components only when comparing
    generators (isolated nodes dominate otherwise), so we expose both
    via :func:`component_count` flags.  Components are ordered by their
    smallest member, each sorted ascending.
    """
    labels = snapshot.sparse().connected_component_labels()
    if labels.size == 0:
        return []
    order = np.argsort(labels, kind="stable")
    sorted_labels = labels[order]
    boundaries = np.nonzero(np.diff(sorted_labels))[0] + 1
    return [np.sort(chunk) for chunk in np.split(order, boundaries)]


def component_count(snapshot: GraphSnapshot, include_singletons: bool = False) -> int:
    """Number of weakly connected components (singletons optional)."""
    labels = snapshot.sparse().connected_component_labels()
    sizes = np.bincount(labels)
    sizes = sizes[sizes > 0]
    if include_singletons:
        return int(sizes.size)
    return int((sizes > 1).sum())


def largest_component_size(snapshot: GraphSnapshot) -> int:
    """Node count of the largest weakly connected component."""
    labels = snapshot.sparse().connected_component_labels()
    if labels.size == 0:
        return 0
    return int(np.bincount(labels).max())


# ----------------------------------------------------------------------
# coreness
# ----------------------------------------------------------------------
def coreness(snapshot: GraphSnapshot) -> np.ndarray:
    """k-core number per node (symmetrized), via iterative peeling."""
    indptr, indices = snapshot.sparse().symmetric_csr()
    n = snapshot.num_nodes
    deg = np.diff(indptr).astype(int)
    core = np.zeros(n, dtype=int)
    alive = np.ones(n, dtype=bool)
    current_deg = deg.copy()
    k = 0
    remaining = n
    while remaining > 0:
        # peel all nodes with degree <= k
        peel = np.nonzero(alive & (current_deg <= k))[0]
        if peel.size == 0:
            k += 1
            continue
        core[peel] = k
        alive[peel] = False
        remaining -= peel.size
        for node in peel:
            nbs = indices[indptr[node]:indptr[node + 1]]
            touched = nbs[alive[nbs]]
            np.subtract.at(current_deg, touched, 1)
    return core


# ----------------------------------------------------------------------
# reciprocity and assortativity
# ----------------------------------------------------------------------
def reciprocity(snapshot: GraphSnapshot) -> float:
    """Fraction of directed edges whose reverse edge also exists.

    Zero for a pure DAG-like network (e.g. guarantee relations), high
    for mutual-interaction networks (e.g. trust graphs).
    """
    sp = snapshot.sparse()
    m = sp.num_edges
    if m == 0:
        return 0.0
    edges = sp.edge_array()
    n = snapshot.num_nodes
    keys = edges[:, 0] * n + edges[:, 1]  # sorted (CSR order)
    rev = edges[:, 1] * n + edges[:, 0]
    pos = np.minimum(np.searchsorted(keys, rev), m - 1)
    mutual = int((keys[pos] == rev).sum())
    return float(mutual / m)


def degree_assortativity(snapshot: GraphSnapshot) -> float:
    """Pearson correlation of total degrees across (symmetrized) edges.

    Positive: hubs connect to hubs; negative: hub-and-spoke structure
    (the common social/web regime).  Returns 0 for degenerate inputs.
    """
    indptr, indices = snapshot.sparse().symmetric_csr()
    deg = np.diff(indptr).astype(np.float64)
    edge_src = np.repeat(
        np.arange(snapshot.num_nodes, dtype=np.int64), np.diff(indptr)
    )
    half = edge_src < indices  # each undirected edge once (u < v)
    rows, cols = edge_src[half], indices[half]
    if rows.size < 2:
        return 0.0
    x = np.concatenate([deg[rows], deg[cols]])
    y = np.concatenate([deg[cols], deg[rows]])
    if x.std() < 1e-12 or y.std() < 1e-12:
        return 0.0
    return float(np.corrcoef(x, y)[0, 1])


# ----------------------------------------------------------------------
# PageRank
# ----------------------------------------------------------------------
def pagerank(
    snapshot: GraphSnapshot,
    damping: float = 0.85,
    tol: float = 1e-9,
    max_iter: int = 200,
) -> np.ndarray:
    """Power-iteration PageRank over the directed snapshot.

    Dangling nodes (out-degree 0) redistribute their mass uniformly,
    the standard convention.  Returns a probability vector of shape
    ``(N,)``; raises ``ValueError`` on an invalid damping factor and
    ``RuntimeError`` if power iteration fails to converge.  Each
    iteration is one edge-scatter over the CSR columns — O(M + N), not
    the dense O(N²) matmul.
    """
    if not 0.0 < damping < 1.0:
        raise ValueError(f"damping must be in (0, 1), got {damping}")
    n = snapshot.num_nodes
    sp = snapshot.sparse()
    edges = sp.edge_array()
    src = edges[:, 0]
    dst = edges[:, 1]
    out_deg = sp.out_degrees().astype(np.float64)
    dangling = out_deg == 0
    inv_out = np.zeros(n)
    np.divide(1.0, out_deg, out=inv_out, where=out_deg > 0)
    rank = np.full(n, 1.0 / n)
    teleport = (1.0 - damping) / n
    for _ in range(max_iter):
        dangling_mass = rank[dangling].sum() / n
        flow = np.bincount(dst, weights=rank[src] * inv_out[src], minlength=n)
        new_rank = teleport + damping * (flow + dangling_mass)
        if np.abs(new_rank - rank).sum() < tol:
            return new_rank
        rank = new_rank
    raise RuntimeError(
        f"PageRank failed to converge within {max_iter} iterations"
    )


# ----------------------------------------------------------------------
# power-law exponent
# ----------------------------------------------------------------------
def power_law_exponent(degrees: np.ndarray, d_min: int = 1) -> float:
    """MLE power-law exponent of a degree sequence (Clauset et al.).

    .. math:: \\hat{\\alpha} = 1 + n \\big/ \\sum_i \\ln(d_i / (d_{min} - 1/2))

    Degrees below ``d_min`` are discarded.  Returns ``nan`` when no
    degree reaches ``d_min`` (e.g. an empty graph).
    """
    d = np.asarray(degrees, dtype=np.float64)
    d = d[d >= d_min]
    if d.size == 0:
        return float("nan")
    logs = np.log(d / (d_min - 0.5))
    s = logs.sum()
    if s <= 0:
        return float("nan")
    return float(1.0 + d.size / s)


# ----------------------------------------------------------------------
# snapshot summary used by the harness
# ----------------------------------------------------------------------
def structure_summary(snapshot: GraphSnapshot) -> Dict[str, float]:
    """All scalar structural properties used in Table I, in one pass.

    One CSR view, one component propagation: nc and lcc are both
    derived from a single label pass.
    """
    sp = snapshot.sparse()
    sizes = np.bincount(sp.connected_component_labels())
    sizes = sizes[sizes > 0]
    return {
        "in_ple": power_law_exponent(in_degree_sequence(snapshot)),
        "out_ple": power_law_exponent(out_degree_sequence(snapshot)),
        "wedge_count": float(sp.wedge_count()),
        "nc": float((sizes > 1).sum()),
        "lcc": float(sizes.max() if sizes.size else 0),
    }


# ----------------------------------------------------------------------
# dense reference implementations (parity-test ground truth)
# ----------------------------------------------------------------------
def _reference_clustering_coefficients(snapshot: GraphSnapshot) -> np.ndarray:
    """Dense A³ clustering (reference)."""
    sym = snapshot.undirected_adjacency()
    deg = sym.sum(axis=1)
    tri = np.diag(sym @ sym @ sym) / 2.0
    possible = deg * (deg - 1) / 2.0
    with np.errstate(divide="ignore", invalid="ignore"):
        cc = np.where(possible > 0, tri / possible, 0.0)
    return cc


def _reference_wedge_count(snapshot: GraphSnapshot) -> int:
    """Dense degree-vector wedge count (reference)."""
    sym = snapshot.undirected_adjacency()
    deg = sym.sum(axis=1)
    return int((deg * (deg - 1) / 2.0).sum())


def _reference_triangle_count(snapshot: GraphSnapshot) -> int:
    """Dense trace(A³)/6 triangle count (reference)."""
    sym = snapshot.undirected_adjacency()
    return int(np.round(np.trace(sym @ sym @ sym) / 6.0))


def _reference_connected_components(snapshot: GraphSnapshot) -> List[np.ndarray]:
    """Dense DFS components (reference)."""
    sym = snapshot.undirected_adjacency()
    n = snapshot.num_nodes
    seen = np.zeros(n, dtype=bool)
    comps: List[np.ndarray] = []
    neighbors = [np.nonzero(sym[i])[0] for i in range(n)]
    for start in range(n):
        if seen[start]:
            continue
        stack = [start]
        seen[start] = True
        comp = []
        while stack:
            node = stack.pop()
            comp.append(node)
            for nb in neighbors[node]:
                if not seen[nb]:
                    seen[nb] = True
                    stack.append(int(nb))
        comps.append(np.array(sorted(comp)))
    return comps


def _reference_coreness(snapshot: GraphSnapshot) -> np.ndarray:
    """Dense peeling coreness (reference)."""
    sym = snapshot.undirected_adjacency()
    n = snapshot.num_nodes
    deg = sym.sum(axis=1).astype(int)
    core = np.zeros(n, dtype=int)
    alive = np.ones(n, dtype=bool)
    current_deg = deg.copy()
    k = 0
    remaining = n
    while remaining > 0:
        peel = np.nonzero(alive & (current_deg <= k))[0]
        if peel.size == 0:
            k += 1
            continue
        for node in peel:
            core[node] = k
            alive[node] = False
            remaining -= 1
            nbs = np.nonzero(sym[node])[0]
            for nb in nbs:
                if alive[nb]:
                    current_deg[nb] -= 1
    return core


def _reference_reciprocity(snapshot: GraphSnapshot) -> float:
    """Dense A∘Aᵀ reciprocity (reference)."""
    adj = snapshot.adjacency
    m = adj.sum()
    if m == 0:
        return 0.0
    return float((adj * adj.T).sum() / m)


def _reference_degree_assortativity(snapshot: GraphSnapshot) -> float:
    """Dense triu assortativity (reference)."""
    sym = snapshot.undirected_adjacency()
    rows, cols = np.nonzero(np.triu(sym, k=1))
    if rows.size < 2:
        return 0.0
    deg = sym.sum(axis=1)
    x = np.concatenate([deg[rows], deg[cols]])
    y = np.concatenate([deg[cols], deg[rows]])
    if x.std() < 1e-12 or y.std() < 1e-12:
        return 0.0
    return float(np.corrcoef(x, y)[0, 1])


def _reference_pagerank(
    snapshot: GraphSnapshot,
    damping: float = 0.85,
    tol: float = 1e-9,
    max_iter: int = 200,
) -> np.ndarray:
    """Dense transition-matrix PageRank (reference)."""
    if not 0.0 < damping < 1.0:
        raise ValueError(f"damping must be in (0, 1), got {damping}")
    n = snapshot.num_nodes
    adj = snapshot.adjacency
    out_deg = adj.sum(axis=1)
    dangling = out_deg == 0
    with np.errstate(divide="ignore", invalid="ignore"):
        transition = np.where(out_deg[:, None] > 0, adj / out_deg[:, None], 0.0)
    rank = np.full(n, 1.0 / n)
    teleport = (1.0 - damping) / n
    for _ in range(max_iter):
        dangling_mass = rank[dangling].sum() / n
        new_rank = teleport + damping * (rank @ transition + dangling_mass)
        if np.abs(new_rank - rank).sum() < tol:
            return new_rank
        rank = new_rank
    raise RuntimeError(
        f"PageRank failed to converge within {max_iter} iterations"
    )


def _reference_structure_summary(snapshot: GraphSnapshot) -> Dict[str, float]:
    """Dense-kernel Table-I summary (reference for the store bench)."""
    sym_components = _reference_connected_components(snapshot)
    return {
        "in_ple": power_law_exponent(snapshot.adjacency.sum(axis=0)),
        "out_ple": power_law_exponent(snapshot.adjacency.sum(axis=1)),
        "wedge_count": float(_reference_wedge_count(snapshot)),
        "nc": float(sum(1 for c in sym_components if len(c) > 1)),
        "lcc": float(
            max(len(c) for c in sym_components) if sym_components else 0
        ),
    }
