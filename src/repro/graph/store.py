"""Columnar temporal edge-store: the canonical dynamic-graph layout.

The paper's datasets (Table I) are sparse — M temporal edges over N
nodes and T steps with M ≪ N²·T — yet the original reproduction routed
every layer through dense ``(N, N)`` float64 adjacency matrices per
snapshot, making memory and copy cost O(N²·T) regardless of sparsity.
This module provides the columnar representation that fixes the data
layer:

* :class:`TemporalEdgeStore` — the whole dynamic graph as three shared
  int64 columns ``(src, dst, t)`` sorted by ``(t, src, dst)`` and
  deduplicated, per-timestep ``offsets`` into the columns, and one
  ``(T, N, F)`` attribute block.  Structural memory is O(M + T),
  attribute memory O(N·F·T); per-timestep CSR/CSC row indexes are
  derived lazily and cached.
* :class:`TemporalEdgeStoreBuilder` — append-only construction for
  generators that emit one timestep at a time (the MixBernoulli decode
  streams edges straight in; no dense matrix is ever built).
* :func:`track_dense_materializations` — observability hook: every
  densification of a store timestep (``GraphSnapshot.adjacency`` on a
  store-backed snapshot, or :meth:`TemporalEdgeStore.dense_adjacency`)
  increments a process-global counter, so tests and the eval harness
  can assert that migrated paths never fall back to dense views.
* :func:`merge_canonical_runs` — vectorized k-way merge of
  canonically-sorted column runs from independent producers
  (generation shards, streaming-ingestion chunks).

The prose version of this contract — memory model, adapter tiers,
and how sharded generation and streaming ingestion build on the
store — lives in ``docs/architecture.md``.

View/adapter contract for new consumers
---------------------------------------
Store-backed :class:`~repro.graph.snapshot.GraphSnapshot` views expose
the graph three ways, cheapest first:

1. **Columns** — ``snapshot.edge_array()`` / ``store.edges_at(t)``:
   zero-copy slices of the shared columns, already in CSR order.
2. **CSR** — ``store.csr_at(t)`` / ``store.csc_at(t)`` or the cached
   ``snapshot.sparse()`` :class:`~repro.graph.sparse.SparseDirectedGraph`
   for neighbourhood queries and the vectorized metric kernels.
3. **Dense** — ``snapshot.adjacency``: a lazily-materialized, cached,
   *read-only* ``(N, N)`` view for legacy consumers.  It is counted
   (see above); new code should never need it.

Arrays handed out by the store are views of shared memory — treat them
as immutable.  Code that wants to mutate must go through ``.copy()``.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Callable, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.graph.snapshot import GraphSnapshot

__all__ = [
    "TemporalEdgeStore",
    "TemporalEdgeStoreBuilder",
    "merge_canonical_runs",
    "track_dense_materializations",
    "dense_materialization_count",
]


# ----------------------------------------------------------------------
# dense-view observability
# ----------------------------------------------------------------------
class _MaterializationCounter:
    __slots__ = ("count",)

    def __init__(self) -> None:
        self.count = 0


_COUNTER = _MaterializationCounter()


def dense_materialization_count() -> int:
    """Process-global number of store→dense adjacency materializations."""
    return _COUNTER.count


def _record_materialization() -> None:
    _COUNTER.count += 1


@contextmanager
def track_dense_materializations() -> Iterator[Callable[[], int]]:
    """Count dense materializations inside a ``with`` block.

    The counter is process-global: overlapping tracked regions (nested
    blocks, concurrent threads) each observe every densification that
    happens anywhere in the process during their window — scope the
    block tightly around the code under test.

    Yields a zero-argument callable returning the number of store
    timesteps densified since the block was entered::

        with track_dense_materializations() as materialized:
            run = timed_fit_generate(name, gen, graph)
            scores = structure_metric_table(graph, run.generated)
        assert materialized() == 0
    """
    start = _COUNTER.count
    yield lambda: _COUNTER.count - start


def _as_int_column(values, name: str) -> np.ndarray:
    arr = np.asarray(values, dtype=np.int64).reshape(-1)
    if arr.ndim != 1:
        raise ValueError(f"{name} must be one-dimensional")
    return arr


def _check_endpoint_range(
    src: np.ndarray, dst: np.ndarray, num_nodes: int
) -> None:
    if src.size and (
        min(src.min(), dst.min()) < 0
        or max(src.max(), dst.max()) >= num_nodes
    ):
        raise ValueError("edge endpoints out of range")


def _composite_keys(
    src: np.ndarray, dst: np.ndarray, t: np.ndarray, num_nodes: int
) -> np.ndarray:
    """Strictly-increasing ``((t·N) + src)·N + dst`` keys of canonical runs."""
    return (t * num_nodes + src) * num_nodes + dst


def _canonicalize_step(
    src: np.ndarray, dst: np.ndarray, num_nodes: int
) -> Tuple[np.ndarray, np.ndarray]:
    """Canonical form of one timestep's raw ``(src, dst)`` columns.

    The per-step restriction of :func:`_canonicalize_columns`
    (loop-drop, ``(src, dst)`` sort, dedup), shared by
    :class:`TemporalEdgeStoreBuilder` and the live builder
    (:mod:`repro.graph.live`) — sealing timesteps one at a time and
    canonicalizing the whole column set at once must be the same
    function, or epoch snapshots could disagree with bulk builds.
    """
    keep = src != dst
    if not keep.all():
        src, dst = src[keep], dst[keep]
    order = np.lexsort((dst, src))
    src, dst = src[order], dst[order]
    if src.size:
        key = src * num_nodes + dst
        fresh = np.ones(src.size, dtype=bool)
        fresh[1:] = key[1:] != key[:-1]
        if not fresh.all():
            src, dst = src[fresh], dst[fresh]
    return src, dst


def _canonicalize_columns(
    src: np.ndarray, dst: np.ndarray, t: np.ndarray, num_nodes: int
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """The store's canonical form of raw ``(src, dst, t)`` columns.

    Drops self-loops, sorts by ``(t, src, dst)`` and removes duplicate
    temporal edges — the single definition every producer
    (``TemporalEdgeStore``, streaming ingestion chunks) shares, so
    independently-built stores can never disagree on canonical order.
    """
    keep = src != dst
    if not keep.all():
        src, dst, t = src[keep], dst[keep], t[keep]
    order = np.lexsort((dst, src, t))
    src, dst, t = src[order], dst[order], t[order]
    if src.size:
        # composite (t, src, dst) keys are now sorted, so duplicates
        # are adjacent: one diff pass removes them
        key = _composite_keys(src, dst, t, num_nodes)
        fresh = np.ones(src.size, dtype=bool)
        fresh[1:] = key[1:] != key[:-1]
        if not fresh.all():
            src, dst, t = src[fresh], dst[fresh], t[fresh]
    return src, dst, t


def _merge_two_runs(
    a: Tuple[np.ndarray, np.ndarray, np.ndarray],
    b: Tuple[np.ndarray, np.ndarray, np.ndarray],
    num_nodes: int,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Vectorized stable merge of two canonically-sorted column runs.

    O(|a| + |b| + searchsorted): every element's merged position is
    computed in two ``np.searchsorted`` calls — run ``a``'s elements
    land before equal-keyed elements of ``b`` — then both runs scatter
    into the output in one fancy-indexed assignment each.  No sort.
    """
    ka = _composite_keys(*a, num_nodes)
    kb = _composite_keys(*b, num_nodes)
    pos_a = np.arange(ka.size, dtype=np.int64) + np.searchsorted(
        kb, ka, side="left"
    )
    pos_b = np.arange(kb.size, dtype=np.int64) + np.searchsorted(
        ka, kb, side="right"
    )
    total = ka.size + kb.size
    out = tuple(np.empty(total, dtype=np.int64) for _ in range(3))
    for col_out, col_a, col_b in zip(out, a, b):
        col_out[pos_a] = col_a
        col_out[pos_b] = col_b
    return out


def merge_canonical_runs(
    runs: Sequence[Tuple[np.ndarray, np.ndarray, np.ndarray]],
    num_nodes: int,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Vectorized k-way merge of canonically-sorted ``(src, dst, t)`` runs.

    Each run must already satisfy the store invariants *internally*
    (sorted by ``(t, src, dst)``, loop-free, deduplicated within the
    run); runs may overlap arbitrarily in key range.  Runs are merged
    pairwise smallest-first (a tournament, O(M log k) total), then one
    diff pass collapses duplicates *across* runs.  Returns int64
    ``(src, dst, t)`` columns ready for
    ``TemporalEdgeStore(..., canonical=True)``.

    This is the merge kernel behind both sharded generation (merging
    per-shard edge columns) and streaming ingestion (merging
    canonicalized chunks under a memory budget).
    """
    pending = [
        tuple(np.asarray(c, dtype=np.int64).reshape(-1) for c in run)
        for run in runs
        if np.asarray(run[0]).size
    ]
    if not pending:
        empty = np.zeros(0, dtype=np.int64)
        return empty, empty.copy(), empty.copy()
    pending.sort(key=lambda run: run[0].size, reverse=True)
    while len(pending) > 1:
        a = pending.pop()
        b = pending.pop()
        pending.append(_merge_two_runs(a, b, num_nodes))
        pending.sort(key=lambda run: run[0].size, reverse=True)
    src, dst, t = pending[0]
    if src.size:
        key = _composite_keys(src, dst, t, num_nodes)
        fresh = np.ones(src.size, dtype=bool)
        fresh[1:] = key[1:] != key[:-1]
        if not fresh.all():
            src, dst, t = src[fresh], dst[fresh], t[fresh]
    return src, dst, t


class TemporalEdgeStore:
    """Columnar CSR-backed store for one dynamic attributed graph.

    Attributes (all shared, treat as immutable)
    -------------------------------------------
    ``src``, ``dst``, ``t``:
        Parallel ``(M,)`` int64 columns sorted by ``(t, src, dst)``,
        loop-free, deduplicated.
    ``offsets``:
        ``(T + 1,)`` int64; timestep ``t`` owns columns
        ``[offsets[t], offsets[t + 1])``.
    ``attributes``:
        ``(T, N, F)`` float64 block (``F = 0`` when absent).

    Parameters
    ----------
    num_nodes, num_timesteps:
        The fixed universe ``N`` and sequence length ``T``.
    src, dst, t:
        Parallel int arrays of directed temporal edges ``(u, v, t)``.
        Self-loops are dropped and duplicates collapse (snapshots are
        unweighted 0/1); the store keeps them sorted by ``(t, src,
        dst)``.
    attributes:
        Optional ``(T, N, F)`` attribute tensor, attached verbatim
        (zero-copy).  ``None`` means ``F = 0``.
    validate:
        Range-check endpoints/timesteps and attribute finiteness.
    canonical:
        Skip canonicalization when the caller guarantees the columns
        are already sorted, deduplicated and loop-free (internal fast
        path for builders and slices).
    """

    __slots__ = (
        "num_nodes",
        "num_timesteps",
        "src",
        "dst",
        "t",
        "offsets",
        "attributes",
        "_csr_cache",
        "_csc_cache",
    )

    def __init__(
        self,
        num_nodes: int,
        num_timesteps: int,
        src,
        dst,
        t,
        attributes: Optional[np.ndarray] = None,
        *,
        validate: bool = True,
        canonical: bool = False,
    ):
        self.num_nodes = int(num_nodes)
        self.num_timesteps = int(num_timesteps)
        if self.num_nodes < 0:
            raise ValueError("num_nodes must be >= 0")
        if self.num_timesteps < 1:
            raise ValueError("num_timesteps must be >= 1")
        src = _as_int_column(src, "src")
        dst = _as_int_column(dst, "dst")
        t = _as_int_column(t, "t")
        if not (src.size == dst.size == t.size):
            raise ValueError(
                f"column lengths differ: {src.size}/{dst.size}/{t.size}"
            )
        if validate and src.size:
            _check_endpoint_range(src, dst, self.num_nodes)
            if t.min() < 0 or t.max() >= self.num_timesteps:
                raise ValueError("edge timesteps out of range")
        if not canonical:
            src, dst, t = _canonicalize_columns(src, dst, t, self.num_nodes)
        self.src = src
        self.dst = dst
        self.t = t
        self.offsets = np.searchsorted(
            t, np.arange(self.num_timesteps + 1, dtype=np.int64)
        ).astype(np.int64)
        if attributes is None:
            attributes = np.zeros((self.num_timesteps, self.num_nodes, 0))
        attributes = np.asarray(attributes, dtype=np.float64)
        if attributes.shape[:2] != (self.num_timesteps, self.num_nodes):
            raise ValueError(
                f"attributes must be (T={self.num_timesteps}, "
                f"N={self.num_nodes}, F), got {attributes.shape}"
            )
        if validate and attributes.size and not np.all(np.isfinite(attributes)):
            raise ValueError("attributes contain non-finite values")
        self.attributes = attributes
        self._csr_cache: dict = {}
        self._csc_cache: dict = {}

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def from_snapshots(
        cls, snapshots: Sequence[GraphSnapshot]
    ) -> "TemporalEdgeStore":
        """Build the columnar store from a snapshot sequence.

        Store-backed snapshots contribute their columns zero-copy;
        dense snapshots are scanned once with ``np.nonzero``.
        """
        if not snapshots:
            raise ValueError("need at least one snapshot")
        n = snapshots[0].num_nodes
        f = snapshots[0].num_attributes
        t_len = len(snapshots)
        srcs: List[np.ndarray] = []
        dsts: List[np.ndarray] = []
        ts: List[np.ndarray] = []
        for t, snap in enumerate(snapshots):
            edges = snap.edge_array()
            # unvalidated dense snapshots may carry diagonal entries;
            # the store's columns are loop-free by contract
            edges = edges[edges[:, 0] != edges[:, 1]]
            srcs.append(edges[:, 0])
            dsts.append(edges[:, 1])
            ts.append(np.full(len(edges), t, dtype=np.int64))
        attrs = (
            np.stack([np.asarray(s.attributes, dtype=np.float64)
                      for s in snapshots])
            if f
            else np.zeros((t_len, n, 0))
        )
        return cls(
            n,
            t_len,
            np.concatenate(srcs) if srcs else np.zeros(0, np.int64),
            np.concatenate(dsts) if dsts else np.zeros(0, np.int64),
            np.concatenate(ts) if ts else np.zeros(0, np.int64),
            attrs,
            validate=False,
            canonical=True,  # per-snapshot nonzero is already (src, dst)-sorted
        )

    def with_attributes(
        self, attributes: Optional[np.ndarray]
    ) -> "TemporalEdgeStore":
        """Same structure (columns shared, zero-copy), new attribute block."""
        return TemporalEdgeStore(
            self.num_nodes,
            self.num_timesteps,
            self.src,
            self.dst,
            self.t,
            attributes,
            validate=attributes is not None,
            canonical=True,
        )

    # ------------------------------------------------------------------
    # basic shape
    # ------------------------------------------------------------------
    @property
    def num_edges(self) -> int:
        """Total temporal edges ``M`` (the paper's Table I column)."""
        return int(self.src.size)

    @property
    def num_attributes(self) -> int:
        """Attribute dimensionality ``F``."""
        return self.attributes.shape[2]

    def num_edges_at(self, t: int) -> int:
        """Directed edge count of timestep ``t``."""
        self._check_t(t)
        return int(self.offsets[t + 1] - self.offsets[t])

    def edges_per_step(self) -> np.ndarray:
        """Per-timestep edge counts, shape ``(T,)`` (int64)."""
        return np.diff(self.offsets)

    def structural_nbytes(self) -> int:
        """Bytes held by the structural columns (O(M + T) memory)."""
        return (
            self.src.nbytes + self.dst.nbytes + self.t.nbytes
            + self.offsets.nbytes
        )

    def _check_t(self, t: int) -> None:
        if not 0 <= t < self.num_timesteps:
            raise IndexError(
                f"timestep {t} out of range 0..{self.num_timesteps - 1}"
            )

    # ------------------------------------------------------------------
    # per-timestep views
    # ------------------------------------------------------------------
    def edges_at(self, t: int) -> Tuple[np.ndarray, np.ndarray]:
        """Zero-copy ``(src, dst)`` column slices of timestep ``t``.

        Rows are sorted by ``(src, dst)`` — exactly CSR order.
        """
        self._check_t(t)
        lo, hi = self.offsets[t], self.offsets[t + 1]
        return self.src[lo:hi], self.dst[lo:hi]

    def compute_csr_at(self, t: int) -> Tuple[np.ndarray, np.ndarray]:
        """Build the out-edge CSR of timestep ``t`` — uncached.

        The single CSR construction shared by :meth:`csr_at` (which
        caches here, unboundedly) and external bounded plan caches
        (:class:`repro.workloads.cache.SnapshotPlanCache`), so the two
        cache layers can never disagree on index layout.  ``indices``
        is the zero-copy ``dst`` slice; ``indptr`` has shape
        ``(N + 1,)`` relative to that slice.
        """
        src, dst = self.edges_at(t)
        counts = np.bincount(src, minlength=self.num_nodes)
        indptr = np.zeros(self.num_nodes + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        return indptr, dst

    def compute_csc_at(self, t: int) -> Tuple[np.ndarray, np.ndarray]:
        """Build the in-edge CSR of timestep ``t`` — uncached.

        One O(M_t log M_t) re-sort; see :meth:`compute_csr_at` for why
        this is split from the caching accessor.
        """
        src, dst = self.edges_at(t)
        order = np.lexsort((src, dst))
        rev_src = src[order]
        counts = np.bincount(dst, minlength=self.num_nodes)
        indptr = np.zeros(self.num_nodes + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        return indptr, rev_src

    def csr_at(self, t: int) -> Tuple[np.ndarray, np.ndarray]:
        """Out-edge CSR of timestep ``t``: ``(indptr, indices)``, cached."""
        cached = self._csr_cache.get(t)
        if cached is None:
            cached = self.compute_csr_at(t)
            self._csr_cache[t] = cached
        return cached

    def csc_at(self, t: int) -> Tuple[np.ndarray, np.ndarray]:
        """In-edge CSR (reverse index) of timestep ``t``, cached."""
        cached = self._csc_cache.get(t)
        if cached is None:
            cached = self.compute_csc_at(t)
            self._csc_cache[t] = cached
        return cached

    def out_degrees_at(self, t: int) -> np.ndarray:
        """Out-degree per node at timestep ``t`` (int64, O(M_t + N))."""
        src, _ = self.edges_at(t)
        return np.bincount(src, minlength=self.num_nodes)

    def in_degrees_at(self, t: int) -> np.ndarray:
        """In-degree per node at timestep ``t`` (int64, O(M_t + N))."""
        _, dst = self.edges_at(t)
        return np.bincount(dst, minlength=self.num_nodes)

    def attributes_at(self, t: int) -> np.ndarray:
        """Zero-copy, read-only ``(N, F)`` attribute slice of timestep ``t``.

        The slice shares the store's attribute block; marking the view
        read-only (the base block stays untouched) keeps an in-place
        mutation of one snapshot view from silently corrupting every
        sibling view.  ``.copy()`` it to mutate.
        """
        self._check_t(t)
        view = self.attributes[t]
        view.flags.writeable = False
        return view

    def sparse_at(self, t: int):
        """:class:`SparseDirectedGraph` over timestep ``t`` (no re-sort)."""
        from repro.graph.sparse import SparseDirectedGraph

        src, dst = self.edges_at(t)
        return SparseDirectedGraph.from_sorted_edges(
            self.num_nodes, np.stack([src, dst], axis=1)
        )

    def dense_adjacency(self, t: int) -> np.ndarray:
        """Materialize the dense ``(N, N)`` 0/1 view of timestep ``t``.

        Legacy escape hatch — every call is counted (see
        :func:`track_dense_materializations`).  The returned array is
        read-only; ``.copy()`` it to mutate.
        """
        src, dst = self.edges_at(t)
        _record_materialization()
        adj = np.zeros((self.num_nodes, self.num_nodes))
        if src.size:
            adj[src, dst] = 1.0
        adj.flags.writeable = False
        return adj

    def temporal_edge_keys(self) -> np.ndarray:
        """Sorted composite ``((t·N) + src)·N + dst`` keys, one per edge.

        Canonical order makes the keys strictly increasing, so two
        stores intersect in O(M) with ``np.intersect1d`` — the privacy
        overlap kernel.
        """
        return (self.t * self.num_nodes + self.src) * self.num_nodes + self.dst

    # ------------------------------------------------------------------
    # whole-graph views
    # ------------------------------------------------------------------
    def snapshot(self, t: int) -> GraphSnapshot:
        """Store-backed snapshot view of timestep ``t`` (no densify)."""
        self._check_t(t)
        return GraphSnapshot._from_store(self, t)

    def to_graph(self):
        """Wrap this store as a :class:`DynamicAttributedGraph`."""
        from repro.graph.dynamic import DynamicAttributedGraph

        return DynamicAttributedGraph.from_store(self)

    def slice_timesteps(self, start: int, stop: int) -> "TemporalEdgeStore":
        """Store over timesteps ``[start, stop)`` (zero-copy columns)."""
        if not 0 <= start < stop <= self.num_timesteps:
            raise IndexError(
                f"invalid timestep slice [{start}, {stop}) for "
                f"T={self.num_timesteps}"
            )
        lo, hi = self.offsets[start], self.offsets[stop]
        return TemporalEdgeStore(
            self.num_nodes,
            stop - start,
            self.src[lo:hi],
            self.dst[lo:hi],
            self.t[lo:hi] - start,
            self.attributes[start:stop],
            validate=False,
            canonical=True,
        )

    def copy(self) -> "TemporalEdgeStore":
        """Deep copy: fresh columns and attribute block, O(M + N·F·T)."""
        return TemporalEdgeStore(
            self.num_nodes,
            self.num_timesteps,
            self.src.copy(),
            self.dst.copy(),
            self.t.copy(),
            self.attributes.copy(),
            validate=False,
            canonical=True,
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TemporalEdgeStore):
            return NotImplemented
        return (
            self.num_nodes == other.num_nodes
            and self.num_timesteps == other.num_timesteps
            and np.array_equal(self.src, other.src)
            and np.array_equal(self.dst, other.dst)
            and np.array_equal(self.t, other.t)
            and np.array_equal(self.attributes, other.attributes)
        )

    def __repr__(self) -> str:
        return (
            f"TemporalEdgeStore(N={self.num_nodes}, M={self.num_edges}, "
            f"F={self.num_attributes}, T={self.num_timesteps})"
        )


class TemporalEdgeStoreBuilder:
    """Append-only builder: one :meth:`add_step` per generated timestep.

    Generators decode timestep ``t`` before ``t + 1``, so edges arrive
    already in temporal order; the builder canonicalizes each step
    (loop-drop, sort, dedup) as it lands and the final :meth:`build` is
    a pair of concatenations — no global re-sort, no dense matrices.
    """

    def __init__(self, num_nodes: int, num_attributes: int = 0):
        self.num_nodes = int(num_nodes)
        self.num_attributes = int(num_attributes)
        self._srcs: List[np.ndarray] = []
        self._dsts: List[np.ndarray] = []
        self._attrs: List[np.ndarray] = []

    @property
    def num_steps(self) -> int:
        """Timesteps appended so far."""
        return len(self._srcs)

    def add_step(
        self,
        src,
        dst,
        attributes: Optional[np.ndarray] = None,
        *,
        canonical: bool = False,
    ) -> int:
        """Append one timestep of edges (+ its ``(N, F)`` attribute rows).

        ``canonical=True`` skips loop-drop/sort/dedup when the caller
        guarantees the columns already satisfy the store's invariants
        (e.g. the MixBernoulli decode's CSR-ordered output).  Returns
        the timestep index the edges landed in.
        """
        src = _as_int_column(src, "src")
        dst = _as_int_column(dst, "dst")
        if src.size != dst.size:
            raise ValueError(f"column lengths differ: {src.size}/{dst.size}")
        _check_endpoint_range(src, dst, self.num_nodes)
        if not canonical:
            src, dst = _canonicalize_step(src, dst, self.num_nodes)
        if attributes is None:
            attributes = np.zeros((self.num_nodes, self.num_attributes))
        attributes = np.asarray(attributes, dtype=np.float64)
        if attributes.shape != (self.num_nodes, self.num_attributes):
            raise ValueError(
                f"attributes must be ({self.num_nodes}, "
                f"{self.num_attributes}), got {attributes.shape}"
            )
        self._srcs.append(src)
        self._dsts.append(dst)
        self._attrs.append(attributes)
        return len(self._srcs) - 1

    def build(self) -> TemporalEdgeStore:
        """Assemble the store (columns concatenated, already canonical)."""
        if not self._srcs:
            raise ValueError("builder has no timesteps")
        t_col = np.repeat(
            np.arange(len(self._srcs), dtype=np.int64),
            [s.size for s in self._srcs],
        )
        return TemporalEdgeStore(
            self.num_nodes,
            len(self._srcs),
            np.concatenate(self._srcs),
            np.concatenate(self._dsts),
            t_col,
            np.stack(self._attrs),
            validate=False,
            canonical=True,
        )
