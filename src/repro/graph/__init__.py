"""Dynamic attributed graph data model (paper §II-A).

A dynamic attributed graph is a sequence of snapshots
``G_t(A_t, X_t)`` over a fixed node universe ``V`` of size ``N``:

* :class:`GraphSnapshot` — one timestep: dense directed adjacency
  ``A ∈ {0,1}^{N×N}`` plus attribute matrix ``X ∈ R^{N×F}``.
* :class:`DynamicAttributedGraph` — the sequence, with statistics and
  validation.
* :class:`TemporalEdgeList` — the ``(u, v, t)`` stream view used by the
  random-walk baselines, with lossless conversion in both directions.
* :mod:`repro.graph.properties` — structural analytics (degrees,
  clustering, coreness, wedges, components, power-law exponents).
* :mod:`repro.graph.streams` — continuous-time interaction streams and
  snapshot discretization policies.
* :mod:`repro.graph.io` — portable ``.npz`` persistence.
* :mod:`repro.graph.formats` — CSV interop (edge streams, event
  streams, attribute tables) for dataset exchange.
"""

from repro.graph.snapshot import GraphSnapshot
from repro.graph.dynamic import DynamicAttributedGraph
from repro.graph.temporal import TemporalEdgeList
from repro.graph.streams import InteractionStream
from repro.graph import properties, io, streams, formats

__all__ = [
    "GraphSnapshot",
    "DynamicAttributedGraph",
    "TemporalEdgeList",
    "InteractionStream",
    "properties",
    "io",
    "streams",
    "formats",
]
