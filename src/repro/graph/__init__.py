"""Dynamic attributed graph data model (paper §II-A).

A dynamic attributed graph is a sequence of snapshots
``G_t(A_t, X_t)`` over a fixed node universe ``V`` of size ``N``.
Canonically it is stored *columnar*:

* :class:`TemporalEdgeStore` — the canonical representation: shared
  ``(src, dst, t)`` int columns sorted by ``(t, src, dst)``,
  per-timestep offsets, one ``(T, N, F)`` attribute block.  O(M + N·F·T)
  memory instead of O(N²·T).
* :class:`GraphSnapshot` — one timestep; either a cheap store-backed
  view or a legacy dense matrix.  ``adjacency`` on a store-backed
  snapshot is a lazily-materialized, cached, read-only dense view.
* :class:`DynamicAttributedGraph` — the sequence, with statistics and
  validation; derives/carries its store.
* :class:`TemporalEdgeList` — the ``(u, v, t)`` stream (multiset) view
  used by the random-walk baselines, with lossless conversion in both
  directions.
* :mod:`repro.graph.properties` — structural analytics (degrees,
  clustering, coreness, wedges, components, power-law exponents), all
  running on the CSR view.
* :mod:`repro.graph.streams` — continuous-time interaction streams and
  snapshot discretization policies.
* :mod:`repro.graph.live` — live ingestion with epoch-consistent
  near-zero-copy snapshots (query while ingesting).
* :mod:`repro.graph.io` — portable ``.npz`` persistence (columnar).
* :mod:`repro.graph.formats` — CSV interop (edge streams, event
  streams, attribute tables) for dataset exchange.
"""

from repro.graph.snapshot import GraphSnapshot
from repro.graph.store import (
    TemporalEdgeStore,
    TemporalEdgeStoreBuilder,
    track_dense_materializations,
)
from repro.graph.dynamic import DynamicAttributedGraph
from repro.graph.temporal import TemporalEdgeList
from repro.graph.streams import InteractionStream
from repro.graph.live import LiveStoreBuilder
from repro.graph import properties, io, live, store, streams, formats

__all__ = [
    "GraphSnapshot",
    "DynamicAttributedGraph",
    "TemporalEdgeStore",
    "TemporalEdgeStoreBuilder",
    "TemporalEdgeList",
    "InteractionStream",
    "LiveStoreBuilder",
    "track_dense_materializations",
    "properties",
    "io",
    "live",
    "store",
    "streams",
    "formats",
]
