"""Dynamic attributed graph: a sequence of snapshots over fixed nodes.

Canonically the graph is a :class:`~repro.graph.store.TemporalEdgeStore`
(columnar ``(src, dst, t)`` + one attribute block); snapshots are cheap
per-timestep views of it.  Graphs built the legacy way — from a list of
dense snapshots — derive their store lazily on first ``.store`` access,
so dense constructions pay the columnar conversion only when a sparse
consumer actually asks for it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence

import numpy as np

from repro.graph.snapshot import GraphSnapshot


@dataclass(frozen=True)
class GraphStatistics:
    """Summary statistics matching the paper's Table I columns."""

    num_nodes: int
    num_temporal_edges: int
    num_attributes: int
    num_timesteps: int

    def __str__(self) -> str:
        return (
            f"N={self.num_nodes} M={self.num_temporal_edges} "
            f"X={self.num_attributes} T={self.num_timesteps}"
        )


class DynamicAttributedGraph:
    """The paper's ``G = {G_t(A_t, X_t)}_{t=1..T}`` (§II-A).

    All snapshots share the node universe ``V`` (|V| = N) and the
    attribute dimensionality ``F``; structural evolution is the change
    of edges, attribute evolution the change of ``X_t``.

    Construct from snapshots (legacy, dense) or from a columnar store
    via :meth:`from_store` (the representation every migrated producer
    emits).
    """

    def __init__(self, snapshots: Sequence[GraphSnapshot]):
        snapshots = list(snapshots)
        if not snapshots:
            raise ValueError("a dynamic graph needs at least one snapshot")
        n = snapshots[0].num_nodes
        f = snapshots[0].num_attributes
        for i, s in enumerate(snapshots):
            if s.num_nodes != n:
                raise ValueError(
                    f"snapshot {i} has {s.num_nodes} nodes, expected {n}"
                )
            if s.num_attributes != f:
                raise ValueError(
                    f"snapshot {i} has {s.num_attributes} attributes, expected {f}"
                )
        self.snapshots: List[GraphSnapshot] = snapshots
        self._store = None

    # ------------------------------------------------------------------
    @classmethod
    def from_store(cls, store) -> "DynamicAttributedGraph":
        """Wrap a :class:`TemporalEdgeStore` (snapshots are lazy views)."""
        graph = cls.__new__(cls)
        graph.snapshots = [
            store.snapshot(t) for t in range(store.num_timesteps)
        ]
        graph._store = store
        return graph

    @property
    def store(self):
        """The canonical columnar edge store (built lazily, cached).

        For legacy dense-backed graphs the first access scans the
        snapshots once and *freezes* the structural view: in-place
        edits of snapshot adjacencies after this point are not
        reflected in the cached store (treat graphs as immutable once
        they enter store-consuming code, or mutate before first
        access).
        """
        if self._store is None:
            from repro.graph.store import TemporalEdgeStore

            self._store = TemporalEdgeStore.from_snapshots(self.snapshots)
        return self._store

    @property
    def is_store_backed(self) -> bool:
        """Whether the columnar store has been attached/derived already."""
        return self._store is not None

    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        """Size of the shared node universe ``N``."""
        return self.snapshots[0].num_nodes

    @property
    def num_attributes(self) -> int:
        """Attribute dimensionality ``F``."""
        return self.snapshots[0].num_attributes

    @property
    def num_timesteps(self) -> int:
        """Sequence length ``T``."""
        return len(self.snapshots)

    @property
    def num_temporal_edges(self) -> int:
        """Total edges summed across snapshots (the paper's ``M``)."""
        if self._store is not None:
            return self._store.num_edges
        return sum(s.num_edges for s in self.snapshots)

    def statistics(self) -> GraphStatistics:
        """N/M/X/T summary (the paper's Table I columns)."""
        return GraphStatistics(
            num_nodes=self.num_nodes,
            num_temporal_edges=self.num_temporal_edges,
            num_attributes=self.num_attributes,
            num_timesteps=self.num_timesteps,
        )

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.snapshots)

    def __getitem__(self, t):
        if isinstance(t, slice):
            return DynamicAttributedGraph(self.snapshots[t])
        return self.snapshots[t]

    def __iter__(self) -> Iterator[GraphSnapshot]:
        return iter(self.snapshots)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DynamicAttributedGraph):
            return NotImplemented
        if self._store is not None and other._store is not None:
            return self._store == other._store
        return len(self) == len(other) and all(
            a == b for a, b in zip(self.snapshots, other.snapshots)
        )

    def __repr__(self) -> str:
        return f"DynamicAttributedGraph({self.statistics()})"

    # ------------------------------------------------------------------
    def adjacency_tensor(self) -> np.ndarray:
        """Stack of adjacency matrices, shape ``(T, N, N)``.

        Explicitly O(N²·T) — a legacy export, not an internal format.
        """
        return np.stack([s.adjacency for s in self.snapshots])

    def attribute_tensor(self) -> np.ndarray:
        """Stack of attribute matrices, shape ``(T, N, F)``.

        Zero-copy for store-backed graphs: a read-only view of the
        store's own block (``.copy()`` it to mutate — pre-store callers
        got a fresh stack, so an in-place edit would now silently
        rewrite the canonical store and every sibling view).
        """
        if self._store is not None:
            view = self._store.attributes.view()
            view.flags.writeable = False
            return view
        return np.stack([s.attributes for s in self.snapshots])

    def active_nodes(self, t: int) -> np.ndarray:
        """Indices of nodes with at least one edge in snapshot ``t``."""
        snap = self.snapshots[t]
        deg = snap.degrees()
        return np.nonzero(deg > 0)[0]

    def copy(self) -> "DynamicAttributedGraph":
        """Deep copy; preserves the backing representation.

        Store-backed graphs copy the O(M + N·F·T) columns (no
        densification); legacy graphs deep-copy their dense snapshots.
        Either way the copy shares no memory with the original — for a
        mutable dense snapshot, use ``graph[t].copy()``.
        """
        if self._store is not None:
            return DynamicAttributedGraph.from_store(self._store.copy())
        return DynamicAttributedGraph([s.copy() for s in self.snapshots])

    def truncated(self, t: int) -> "DynamicAttributedGraph":
        """Prefix of the sequence up to (excluding) timestep ``t``."""
        if not 1 <= t <= len(self):
            raise IndexError(f"truncation point {t} out of range 1..{len(self)}")
        if self._store is not None:
            return DynamicAttributedGraph.from_store(
                self._store.slice_timesteps(0, t)
            )
        return DynamicAttributedGraph(self.snapshots[:t])

    @classmethod
    def from_tensors(
        cls, adjacency: np.ndarray, attributes: Optional[np.ndarray] = None
    ) -> "DynamicAttributedGraph":
        """Build from ``(T, N, N)`` adjacency and ``(T, N, F)`` attributes."""
        adjacency = np.asarray(adjacency, dtype=np.float64)
        if adjacency.ndim != 3:
            raise ValueError("adjacency tensor must be (T, N, N)")
        t_len = adjacency.shape[0]
        snaps = []
        for t in range(t_len):
            attr = None if attributes is None else attributes[t]
            snaps.append(GraphSnapshot(adjacency[t], attr))
        return cls(snaps)
