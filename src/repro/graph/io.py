"""Persistence for dynamic attributed graphs (compressed ``.npz``)."""

from __future__ import annotations

import os
from typing import Union

import numpy as np

from repro.graph.dynamic import DynamicAttributedGraph

_FORMAT_VERSION = 1


def save(graph: DynamicAttributedGraph, path: Union[str, os.PathLike]) -> None:
    """Write ``graph`` to ``path`` as a compressed npz archive."""
    np.savez_compressed(
        path,
        version=np.array(_FORMAT_VERSION),
        adjacency=graph.adjacency_tensor().astype(np.int8),
        attributes=graph.attribute_tensor(),
    )


def load(path: Union[str, os.PathLike]) -> DynamicAttributedGraph:
    """Read a graph previously written by :func:`save`."""
    with np.load(path) as data:
        version = int(data["version"])
        if version != _FORMAT_VERSION:
            raise ValueError(f"unsupported graph file version {version}")
        adjacency = data["adjacency"].astype(np.float64)
        attributes = data["attributes"]
    return DynamicAttributedGraph.from_tensors(adjacency, attributes)
