"""Persistence for dynamic attributed graphs (compressed ``.npz``).

Format version 2 serializes the canonical columnar store — edge
columns ``(src, dst, t)`` plus the ``(T, N, F)`` attribute block — so
files are O(M + N·F·T) instead of the version-1 dense O(N²·T)
adjacency stack.  Version-1 archives are still readable.
"""

from __future__ import annotations

import os
from typing import Union

import numpy as np

from repro.graph.dynamic import DynamicAttributedGraph
from repro.graph.store import TemporalEdgeStore

_FORMAT_VERSION = 2


def save(graph: DynamicAttributedGraph, path: Union[str, os.PathLike]) -> None:
    """Write ``graph`` to ``path`` as a compressed columnar npz archive."""
    store = graph.store
    np.savez_compressed(
        path,
        version=np.array(_FORMAT_VERSION),
        num_nodes=np.array(store.num_nodes),
        num_timesteps=np.array(store.num_timesteps),
        src=store.src,
        dst=store.dst,
        t=store.t,
        attributes=store.attributes,
    )


def load(path: Union[str, os.PathLike]) -> DynamicAttributedGraph:
    """Read a graph previously written by :func:`save` (v1 or v2)."""
    with np.load(path) as data:
        version = int(data["version"])
        if version == 1:
            adjacency = data["adjacency"].astype(np.float64)
            attributes = data["attributes"]
            return DynamicAttributedGraph.from_tensors(adjacency, attributes)
        if version != _FORMAT_VERSION:
            raise ValueError(f"unsupported graph file version {version}")
        store = TemporalEdgeStore(
            int(data["num_nodes"]),
            int(data["num_timesteps"]),
            data["src"],
            data["dst"],
            data["t"],
            data["attributes"],
        )
    return DynamicAttributedGraph.from_store(store)
