"""Persistence for dynamic attributed graphs (compressed ``.npz``).

Two archive kinds share the ``.npz`` container:

* **Graph archives** (:func:`save` / :func:`load`) — format version 2
  serializes the canonical columnar store: edge columns
  ``(src, dst, t)`` plus the ``(T, N, F)`` attribute block, O(M +
  N·F·T) instead of the version-1 dense O(N²·T) adjacency stack.
  Version-1 archives are still readable.
* **Event logs** (:func:`save_events`) — raw, *unsorted, possibly
  duplicated* ``(src, dst, t)`` event columns as a producer emitted
  them.  :func:`load` recognizes them and reconstructs the canonical
  store through the bounded-memory streaming ingestion path
  (:func:`repro.graph.streams.ingest_stream`): canonicalization runs
  chunk by chunk under ``memory_budget_bytes``, never a full-stream
  sort.
"""

from __future__ import annotations

import os
from typing import Optional, Union

import numpy as np

from repro.graph.dynamic import DynamicAttributedGraph
from repro.graph.store import TemporalEdgeStore

_FORMAT_VERSION = 2
_EVENTS_FORMAT_VERSION = 1


def save(graph: DynamicAttributedGraph, path: Union[str, os.PathLike]) -> None:
    """Write ``graph`` to ``path`` as a compressed columnar npz archive."""
    store = graph.store
    np.savez_compressed(
        path,
        version=np.array(_FORMAT_VERSION),
        num_nodes=np.array(store.num_nodes),
        num_timesteps=np.array(store.num_timesteps),
        src=store.src,
        dst=store.dst,
        t=store.t,
        attributes=store.attributes,
    )


def save_events(
    path: Union[str, os.PathLike],
    src,
    dst,
    t,
    num_nodes: int,
    num_timesteps: int,
    attributes: Optional[np.ndarray] = None,
) -> None:
    """Write a raw temporal event log (unsorted columns, duplicates kept).

    The write-optimized sibling of :func:`save`: producers append
    events in arrival order with no canonicalization cost; the sort,
    self-loop drop and dedup are deferred to :func:`load`'s chunked
    streaming ingestion.  ``attributes`` is an optional ``(T, N, F)``
    block stored verbatim.
    """
    src = np.asarray(src, dtype=np.int64).reshape(-1)
    dst = np.asarray(dst, dtype=np.int64).reshape(-1)
    t = np.asarray(t, dtype=np.int64).reshape(-1)
    if not (src.size == dst.size == t.size):
        raise ValueError(
            f"column lengths differ: {src.size}/{dst.size}/{t.size}"
        )
    payload = dict(
        kind=np.array("events"),
        version=np.array(_EVENTS_FORMAT_VERSION),
        num_nodes=np.array(int(num_nodes)),
        num_timesteps=np.array(int(num_timesteps)),
        src=src,
        dst=dst,
        t=t,
    )
    if attributes is not None:
        payload["attributes"] = np.asarray(attributes, dtype=np.float64)
    np.savez_compressed(path, **payload)


def load(
    path: Union[str, os.PathLike],
    *,
    memory_budget_bytes: Optional[int] = None,
    checkpoint_path: Optional[str] = None,
    checkpoint_every_events: Optional[int] = None,
) -> DynamicAttributedGraph:
    """Read a graph archive (v1 dense, v2 columnar) or an event log.

    Event logs (written by :func:`save_events`) are folded into the
    canonical store with
    :func:`repro.graph.streams.ingest_stream`; ``memory_budget_bytes``
    bounds the transient canonicalization working set (default: one
    64k-event chunk), and ``checkpoint_path`` /
    ``checkpoint_every_events`` enable the crash-safe resumable
    ingestion described in ``docs/reliability.md``.  For graph
    archives these parameters are ignored — the columns are already
    canonical.
    """
    with np.load(path, allow_pickle=False) as data:
        if "kind" in data and str(data["kind"]) == "events":
            version = int(data["version"])
            if version != _EVENTS_FORMAT_VERSION:
                raise ValueError(
                    f"unsupported event-log file version {version}"
                )
            from repro.graph.streams import ingest_stream

            store = ingest_stream(
                (data["src"], data["dst"], data["t"]),
                int(data["num_nodes"]),
                int(data["num_timesteps"]),
                memory_budget_bytes=memory_budget_bytes,
                attributes=(
                    data["attributes"] if "attributes" in data else None
                ),
                checkpoint_path=checkpoint_path,
                checkpoint_every_events=checkpoint_every_events,
            )
            return DynamicAttributedGraph.from_store(store)
        version = int(data["version"])
        if version == 1:
            adjacency = data["adjacency"].astype(np.float64)
            attributes = data["attributes"]
            return DynamicAttributedGraph.from_tensors(adjacency, attributes)
        if version != _FORMAT_VERSION:
            raise ValueError(f"unsupported graph file version {version}")
        store = TemporalEdgeStore(
            int(data["num_nodes"]),
            int(data["num_timesteps"]),
            data["src"],
            data["dst"],
            data["t"],
            data["attributes"],
        )
    return DynamicAttributedGraph.from_store(store)
