"""Live ingestion with epoch-consistent, near-zero-copy snapshots.

:class:`~repro.graph.streams.StreamingStoreBuilder` folds an *offline*
event stream into one store — ingestion finishes, then serving starts.
This module is the online counterpart for the reads-racing-writes
shape serving actually has: a :class:`LiveStoreBuilder` accepts events
while readers take immutable :class:`~repro.graph.store.TemporalEdgeStore`
snapshots of everything sealed so far.

Epoch model
-----------
Timesteps seal in order.  The builder's **epoch** is the number of
sealed timesteps: events for unsealed timesteps buffer per step;
:meth:`LiveStoreBuilder.seal_step` canonicalizes the lowest unsealed
step (loop-drop, ``(src, dst)`` sort, dedup — the exact per-step
restriction of the store's bulk canonicalization, shared via
``repro.graph.store._canonicalize_step``) and appends it to the frozen
columns, advancing the epoch by one.  Sealed data is immutable
forever; events targeting a sealed timestep are *late* and either
raise or are dropped-and-counted (``late_policy``).

Because timesteps seal in increasing order and each sealed block is
``(src, dst)``-sorted, the frozen columns are **always a canonical
prefix**: :meth:`LiveStoreBuilder.snapshot` returns
``(epoch, TemporalEdgeStore)`` whose ``(src, dst, t)`` columns are
zero-copy *views* of that prefix — no merge, no copy, O(T) for the
offsets.  Appends land in spare capacity past the prefix, so a
snapshot can never observe a torn write; capacity growth reallocates,
and old snapshots keep the old allocation alive through their views.

The consistency contract (pinned by ``tests/graph/test_live_epochs.py``
and ``docs/workloads.md``): **a query at epoch E is bit-identical to
the same query against a bulk-built store of E's sealed events.**
This holds by construction — per-step sealing and bulk
canonicalization share one kernel — and the test suite asserts it
across every batched kernel and per-query fallback.

Fault injection (``docs/reliability.md``): ``live.advance_epoch``
fires at the top of :meth:`~LiveStoreBuilder.seal_step` *before any
mutation*, so a failed seal leaves the builder unchanged and
retryable; ``live.snapshot`` fires in
:meth:`~LiveStoreBuilder.snapshot`, and the live query service
degrades a faulting refresh to serving the previous epoch.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.graph.store import (
    TemporalEdgeStore,
    _as_int_column,
    _canonicalize_step,
    _check_endpoint_range,
)
from repro.reliability import fault_injector

__all__ = ["LiveStoreBuilder", "snapshot_owned_bytes"]

#: Initial frozen-column capacity (events); doubles as needed.
_INITIAL_CAPACITY = 1024


def snapshot_owned_bytes(store: TemporalEdgeStore) -> int:
    """Bytes of ``store``'s edge columns *not* shared with a builder.

    A live snapshot's ``(src, dst, t)`` columns are prefix views of
    the builder's frozen buffers, so this is 0 — the owned-bytes
    assertion behind the "snapshot is not a full-store copy" claim
    (``workloads.live_serving`` in ``BENCH_perf.json``).  The O(T)
    ``offsets`` array and the by-reference attribute block are
    excluded: neither scales with M.
    """
    return sum(
        a.nbytes for a in (store.src, store.dst, store.t) if a.base is None
    )


class LiveStoreBuilder:
    """Ingest events and serve immutable epoch snapshots concurrently.

    Parameters
    ----------
    num_nodes, num_timesteps:
        The fixed universe ``N`` and sequence length ``T``.  Snapshots
        always span all ``T`` timesteps; unsealed timesteps are empty
        (queries against them are valid and return empty results).
    attributes:
        Optional ``(T, N, F)`` attribute block, fixed up front and
        attached to every snapshot by reference (live ingestion is
        structural; attribute plans never invalidate).
    late_policy:
        What to do with events targeting an already-sealed timestep:
        ``"error"`` (default) raises ``ValueError``; ``"drop"``
        discards them and counts :attr:`late_events`.
    initial_capacity:
        Starting frozen-column capacity in events (grows by doubling).

    All methods are thread-safe: one writer thread may
    ``extend``/``seal_step`` while any number of reader threads call
    :meth:`snapshot`.
    """

    def __init__(
        self,
        num_nodes: int,
        num_timesteps: int,
        *,
        attributes: Optional[np.ndarray] = None,
        late_policy: str = "error",
        initial_capacity: int = _INITIAL_CAPACITY,
    ):
        self.num_nodes = int(num_nodes)
        self.num_timesteps = int(num_timesteps)
        if self.num_nodes < 0:
            raise ValueError("num_nodes must be >= 0")
        if self.num_timesteps < 1:
            raise ValueError("num_timesteps must be >= 1")
        if late_policy not in ("error", "drop"):
            raise ValueError(
                f"unknown late_policy {late_policy!r}; "
                "expected 'error' or 'drop'"
            )
        if attributes is not None:
            attributes = np.asarray(attributes, dtype=np.float64)
            if attributes.shape[:2] != (self.num_timesteps, self.num_nodes):
                raise ValueError(
                    f"attributes must be (T={self.num_timesteps}, "
                    f"N={self.num_nodes}, F), got {attributes.shape}"
                )
            if attributes.size and not np.all(np.isfinite(attributes)):
                raise ValueError("attributes contain non-finite values")
        self.late_policy = late_policy
        self._attributes = attributes
        cap = max(int(initial_capacity), 16)
        self._fsrc = np.empty(cap, dtype=np.int64)
        self._fdst = np.empty(cap, dtype=np.int64)
        self._ft = np.empty(cap, dtype=np.int64)
        self._flen = 0
        self._sealed = 0  # sealed timesteps == epoch
        self._pending_src: Dict[int, List[np.ndarray]] = {}
        self._pending_dst: Dict[int, List[np.ndarray]] = {}
        self._events_ingested = 0
        self._pending_events = 0
        self._late_events = 0
        self._lock = threading.Lock()
        self._cached: Optional[Tuple[int, TemporalEdgeStore]] = None

    # ------------------------------------------------------------------
    # counters
    # ------------------------------------------------------------------
    @property
    def epoch(self) -> int:
        """Sealed timesteps so far — the current snapshot epoch."""
        return self._sealed

    @property
    def events_ingested(self) -> int:
        """Raw events accepted (pre-dedup, excluding dropped late ones)."""
        return self._events_ingested

    @property
    def pending_events(self) -> int:
        """Raw events buffered in unsealed timesteps."""
        return self._pending_events

    @property
    def sealed_events(self) -> int:
        """Canonical (deduplicated, loop-free) events in the frozen prefix."""
        return self._flen

    @property
    def late_events(self) -> int:
        """Events dropped for targeting sealed timesteps (``late_policy="drop"``)."""
        return self._late_events

    # ------------------------------------------------------------------
    # ingestion (writer side)
    # ------------------------------------------------------------------
    def add(self, u: int, v: int, t: int) -> int:
        """Buffer one event ``(u, v, t)``; returns events accepted (0 or 1)."""
        return self.extend(
            np.array([u], dtype=np.int64),
            np.array([v], dtype=np.int64),
            np.array([t], dtype=np.int64),
        )

    def extend(self, src, dst, t) -> int:
        """Buffer a batch of events given as parallel columns.

        Events may target any *unsealed* timestep in any order; events
        for sealed timesteps follow ``late_policy``.  Returns the
        number of events accepted.
        """
        src = _as_int_column(src, "src")
        dst = _as_int_column(dst, "dst")
        t = _as_int_column(t, "t")
        if not (src.size == dst.size == t.size):
            raise ValueError(
                f"column lengths differ: {src.size}/{dst.size}/{t.size}"
            )
        if not src.size:
            return 0
        _check_endpoint_range(src, dst, self.num_nodes)
        if t.min() < 0 or t.max() >= self.num_timesteps:
            raise ValueError("edge timesteps out of range")
        with self._lock:
            late = t < self._sealed
            if late.any():
                n_late = int(late.sum())
                if self.late_policy == "error":
                    raise ValueError(
                        f"{n_late} events target sealed timesteps "
                        f"(epoch {self._sealed}); use late_policy='drop' "
                        "to discard-and-count instead"
                    )
                self._late_events += n_late
                keep = ~late
                src, dst, t = src[keep], dst[keep], t[keep]
                if not src.size:
                    return 0
            order = np.argsort(t, kind="stable")
            s_src, s_dst, s_t = src[order], dst[order], t[order]
            boundaries = np.flatnonzero(np.r_[True, s_t[1:] != s_t[:-1]])
            for start, stop in zip(
                boundaries, np.r_[boundaries[1:], s_t.size]
            ):
                step = int(s_t[start])
                self._pending_src.setdefault(step, []).append(
                    s_src[start:stop]
                )
                self._pending_dst.setdefault(step, []).append(
                    s_dst[start:stop]
                )
            self._events_ingested += src.size
            self._pending_events += src.size
            return int(src.size)

    def _reserve_locked(self, needed: int) -> None:
        """Grow frozen capacity to ``needed`` (doubling; copies the prefix).

        Old snapshots hold views of the old allocation, which stays
        alive (and immutable) through them — growth never tears a
        published snapshot.
        """
        cap = self._fsrc.size
        if needed <= cap:
            return
        new_cap = max(cap * 2, needed)
        for name in ("_fsrc", "_fdst", "_ft"):
            old = getattr(self, name)
            fresh = np.empty(new_cap, dtype=np.int64)
            fresh[: self._flen] = old[: self._flen]
            setattr(self, name, fresh)

    def seal_step(self) -> int:
        """Seal the lowest unsealed timestep; returns the new epoch.

        Canonicalizes that step's buffered events and appends them to
        the frozen prefix.  Atomic under faults: the
        ``live.advance_epoch`` injection point fires *before any
        mutation*, so a raised fault leaves the builder unchanged and
        the seal retryable.
        """
        with self._lock:
            step = self._sealed
            if step >= self.num_timesteps:
                raise ValueError(
                    f"all {self.num_timesteps} timesteps already sealed"
                )
            fault_injector.fire("live.advance_epoch", key=step)
            batches = self._pending_src.get(step)
            if batches:
                src = np.concatenate(batches)
                dst = np.concatenate(self._pending_dst[step])
                raw = src.size
                src, dst = _canonicalize_step(src, dst, self.num_nodes)
            else:
                raw = 0
                src = dst = np.zeros(0, dtype=np.int64)
            k = src.size
            self._reserve_locked(self._flen + k)
            self._fsrc[self._flen : self._flen + k] = src
            self._fdst[self._flen : self._flen + k] = dst
            self._ft[self._flen : self._flen + k] = step
            self._flen += k
            self._pending_src.pop(step, None)
            self._pending_dst.pop(step, None)
            self._pending_events -= raw
            self._sealed = step + 1
            self._cached = None
            return self._sealed

    def seal_through(self, t: int) -> int:
        """Seal every timestep up to and including ``t``; returns the epoch."""
        if not 0 <= t < self.num_timesteps:
            raise IndexError(
                f"timestep {t} out of range 0..{self.num_timesteps - 1}"
            )
        while self._sealed <= t:
            self.seal_step()
        return self._sealed

    # ------------------------------------------------------------------
    # snapshots (reader side)
    # ------------------------------------------------------------------
    def snapshot(self) -> Tuple[int, TemporalEdgeStore]:
        """``(epoch, store)`` over the sealed prefix — near-zero-copy.

        The store's columns are views of the frozen prefix (no merge,
        no copy; :func:`snapshot_owned_bytes` is 0), its ``offsets``
        is the only fresh O(T) array, and the attribute block is
        attached by reference.  Repeated calls at the same epoch
        return the identical store object.  Buffered (unsealed) events
        are invisible until sealed.
        """
        fault_injector.fire("live.snapshot", key=self._sealed)
        with self._lock:
            if self._cached is not None:
                return self._cached
            store = TemporalEdgeStore(
                self.num_nodes,
                self.num_timesteps,
                self._fsrc[: self._flen],
                self._fdst[: self._flen],
                self._ft[: self._flen],
                self._attributes,
                validate=False,
                canonical=True,
            )
            self._cached = (self._sealed, store)
            return self._cached

    def freeze(self) -> TemporalEdgeStore:
        """Seal every remaining timestep and return the final snapshot.

        The result equals a bulk-built
        :class:`~repro.graph.store.TemporalEdgeStore` over every
        accepted event — the end-of-stream handoff from live serving
        back to the offline world.
        """
        while self._sealed < self.num_timesteps:
            self.seal_step()
        return self.snapshot()[1]

    def __repr__(self) -> str:
        return (
            f"LiveStoreBuilder(N={self.num_nodes}, T={self.num_timesteps}, "
            f"epoch={self._sealed}, sealed_events={self._flen}, "
            f"pending={self._pending_events})"
        )
