"""Single-timestep attributed graph snapshot."""

from __future__ import annotations

from typing import Iterable, List, Optional, Tuple

import numpy as np


class GraphSnapshot:
    """One timestep ``G_t(A_t, X_t)`` of a dynamic attributed graph.

    Parameters
    ----------
    adjacency:
        Dense ``(N, N)`` 0/1 matrix; ``adjacency[i, j] = 1`` encodes a
        directed edge ``i -> j``.  The diagonal must be zero (no
        self-loops, matching the paper's datasets).
    attributes:
        ``(N, F)`` float matrix of node attributes, or ``None`` for a
        structure-only snapshot (``F = 0``).
    validate:
        Run invariant checks (binary adjacency, finite attributes).
    """

    __slots__ = ("adjacency", "attributes")

    def __init__(
        self,
        adjacency: np.ndarray,
        attributes: Optional[np.ndarray] = None,
        validate: bool = True,
    ):
        adjacency = np.asarray(adjacency, dtype=np.float64)
        if adjacency.ndim != 2 or adjacency.shape[0] != adjacency.shape[1]:
            raise ValueError(f"adjacency must be square, got {adjacency.shape}")
        n = adjacency.shape[0]
        if attributes is None:
            attributes = np.zeros((n, 0))
        attributes = np.asarray(attributes, dtype=np.float64)
        if attributes.ndim != 2 or attributes.shape[0] != n:
            raise ValueError(
                f"attributes must be (N, F) with N={n}, got {attributes.shape}"
            )
        if validate:
            uniq = np.unique(adjacency)
            if not np.all(np.isin(uniq, (0.0, 1.0))):
                raise ValueError("adjacency must be binary (0/1)")
            if np.any(np.diag(adjacency) != 0):
                raise ValueError("self-loops are not allowed")
            if not np.all(np.isfinite(attributes)):
                raise ValueError("attributes contain non-finite values")
        self.adjacency = adjacency
        self.attributes = attributes

    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        """Number of nodes ``N``."""
        return self.adjacency.shape[0]

    @property
    def num_edges(self) -> int:
        """Number of directed edges in this snapshot."""
        return int(self.adjacency.sum())

    @property
    def num_attributes(self) -> int:
        """Attribute dimensionality ``F``."""
        return self.attributes.shape[1]

    def edges(self) -> List[Tuple[int, int]]:
        """Directed edge list as ``(src, dst)`` pairs."""
        rows, cols = np.nonzero(self.adjacency)
        return list(zip(rows.tolist(), cols.tolist()))

    def in_degrees(self) -> np.ndarray:
        """In-degree per node, shape ``(N,)``."""
        return self.adjacency.sum(axis=0)

    def out_degrees(self) -> np.ndarray:
        """Out-degree per node, shape ``(N,)``."""
        return self.adjacency.sum(axis=1)

    def degrees(self) -> np.ndarray:
        """Total (in + out) degree per node."""
        return self.in_degrees() + self.out_degrees()

    def undirected_adjacency(self) -> np.ndarray:
        """Symmetrized 0/1 adjacency (used by clustering/coreness metrics)."""
        sym = np.maximum(self.adjacency, self.adjacency.T)
        return sym

    def copy(self) -> "GraphSnapshot":
        """Deep copy (fresh adjacency and attribute arrays)."""
        return GraphSnapshot(
            self.adjacency.copy(), self.attributes.copy(), validate=False
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, GraphSnapshot):
            return NotImplemented
        return np.array_equal(self.adjacency, other.adjacency) and np.array_equal(
            self.attributes, other.attributes
        )

    def __repr__(self) -> str:
        return (
            f"GraphSnapshot(N={self.num_nodes}, E={self.num_edges}, "
            f"F={self.num_attributes})"
        )

    # ------------------------------------------------------------------
    @classmethod
    def from_edges(
        cls,
        num_nodes: int,
        edges: Iterable[Tuple[int, int]],
        attributes: Optional[np.ndarray] = None,
    ) -> "GraphSnapshot":
        """Build a snapshot from a directed edge list (ignores self-loops)."""
        adj = np.zeros((num_nodes, num_nodes))
        for u, v in edges:
            if u == v:
                continue
            adj[u, v] = 1.0
        return cls(adj, attributes)
