"""Single-timestep attributed graph snapshot.

A snapshot is either *dense-backed* (constructed from an ``(N, N)``
matrix, the legacy entry point) or *store-backed* (a view of one
timestep of a :class:`~repro.graph.store.TemporalEdgeStore`).  Either
way the public API is identical; the difference is cost:

* Store-backed snapshots answer ``num_edges`` / ``edges`` / degree
  queries straight from the shared columns in O(M_t + N), and
  ``adjacency`` is a lazily-materialized, cached, **read-only** dense
  view whose creation is counted (see
  :func:`repro.graph.store.track_dense_materializations`).
* Dense-backed snapshots behave exactly as before.

``sparse()`` exposes the cached CSR view either way — the preferred
access path for metric kernels.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Tuple

import numpy as np


class GraphSnapshot:
    """One timestep ``G_t(A_t, X_t)`` of a dynamic attributed graph.

    Parameters
    ----------
    adjacency:
        Dense ``(N, N)`` 0/1 matrix; ``adjacency[i, j] = 1`` encodes a
        directed edge ``i -> j``.  The diagonal must be zero (no
        self-loops, matching the paper's datasets).
    attributes:
        ``(N, F)`` float matrix of node attributes, or ``None`` for a
        structure-only snapshot (``F = 0``).
    validate:
        Run invariant checks (binary adjacency, finite attributes).
        Internal constructions pass ``validate=False``; the checks are
        single vectorized passes (no sort — see ``_validate_dense``).
    """

    __slots__ = ("_adjacency", "_attributes", "_store", "_t", "_sparse")

    def __init__(
        self,
        adjacency: np.ndarray,
        attributes: Optional[np.ndarray] = None,
        validate: bool = True,
    ):
        adjacency = np.asarray(adjacency, dtype=np.float64)
        if adjacency.ndim != 2 or adjacency.shape[0] != adjacency.shape[1]:
            raise ValueError(f"adjacency must be square, got {adjacency.shape}")
        n = adjacency.shape[0]
        if attributes is None:
            attributes = np.zeros((n, 0))
        attributes = np.asarray(attributes, dtype=np.float64)
        if attributes.ndim != 2 or attributes.shape[0] != n:
            raise ValueError(
                f"attributes must be (N, F) with N={n}, got {attributes.shape}"
            )
        if validate:
            _validate_dense(adjacency, attributes)
        self._adjacency = adjacency
        self._attributes = attributes
        self._store = None
        self._t = -1
        self._sparse = None

    # ------------------------------------------------------------------
    @classmethod
    def _from_store(cls, store, t: int) -> "GraphSnapshot":
        """Store-backed view of timestep ``t`` (internal; no densify)."""
        snap = cls.__new__(cls)
        snap._adjacency = None
        snap._attributes = None
        snap._store = store
        snap._t = int(t)
        snap._sparse = None
        return snap

    @property
    def is_store_backed(self) -> bool:
        """Whether this snapshot is a view over a columnar edge store."""
        return self._store is not None

    @property
    def adjacency(self) -> np.ndarray:
        """Dense ``(N, N)`` 0/1 matrix.

        For store-backed snapshots this is a lazily-materialized,
        cached, read-only view; its creation is counted so migrated
        paths can assert they never densify.
        """
        if self._adjacency is None:
            self._adjacency = self._store.dense_adjacency(self._t)
        return self._adjacency

    @property
    def attributes(self) -> np.ndarray:
        """``(N, F)`` attribute matrix (zero-copy slice when store-backed)."""
        if self._attributes is None:
            self._attributes = self._store.attributes_at(self._t)
        return self._attributes

    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        """Number of nodes ``N``."""
        if self._store is not None:
            return self._store.num_nodes
        return self._adjacency.shape[0]

    @property
    def num_edges(self) -> int:
        """Number of directed edges in this snapshot."""
        if self._store is not None:
            return self._store.num_edges_at(self._t)
        return int(self._adjacency.sum())

    @property
    def num_attributes(self) -> int:
        """Attribute dimensionality ``F``."""
        if self._store is not None:
            return self._store.num_attributes
        return self._attributes.shape[1]

    def edge_array(self) -> np.ndarray:
        """Directed edges as an ``(E, 2)`` int64 array in CSR order.

        Zero-copy-adjacent for store-backed snapshots (column slices);
        one ``np.nonzero`` scan for dense-backed ones.
        """
        if self._store is not None:
            src, dst = self._store.edges_at(self._t)
            return np.stack([src, dst], axis=1)
        rows, cols = np.nonzero(self._adjacency)
        return np.stack([rows, cols], axis=1).astype(np.int64)

    def edges(self) -> List[Tuple[int, int]]:
        """Directed edge list as ``(src, dst)`` pairs."""
        edges = self.edge_array()
        return list(zip(edges[:, 0].tolist(), edges[:, 1].tolist()))

    def in_degrees(self) -> np.ndarray:
        """In-degree per node, shape ``(N,)``."""
        if self._store is not None:
            return self._store.in_degrees_at(self._t).astype(np.float64)
        return self._adjacency.sum(axis=0)

    def out_degrees(self) -> np.ndarray:
        """Out-degree per node, shape ``(N,)``."""
        if self._store is not None:
            return self._store.out_degrees_at(self._t).astype(np.float64)
        return self._adjacency.sum(axis=1)

    def degrees(self) -> np.ndarray:
        """Total (in + out) degree per node."""
        return self.in_degrees() + self.out_degrees()

    def sparse(self):
        """:class:`~repro.graph.sparse.SparseDirectedGraph` CSR view.

        The preferred representation for metric kernels.  Store-backed
        snapshots build it from the (immutable) store columns and
        cache it; dense-backed snapshots rebuild from a fresh
        ``np.nonzero`` scan on every call, so legal in-place edits of
        a writable adjacency are always reflected (the pre-store
        mutate-then-remeasure contract).
        """
        if self._store is not None:
            if self._sparse is None:
                self._sparse = self._store.sparse_at(self._t)
            return self._sparse
        from repro.graph.sparse import SparseDirectedGraph

        return SparseDirectedGraph.from_snapshot(self)

    def undirected_adjacency(self) -> np.ndarray:
        """Symmetrized 0/1 adjacency (densifies; legacy consumers only)."""
        sym = np.maximum(self.adjacency, self.adjacency.T)
        return sym

    def copy(self) -> "GraphSnapshot":
        """Deep copy (fresh, writable, dense adjacency and attributes)."""
        return GraphSnapshot(
            self.adjacency.copy(), self.attributes.copy(), validate=False
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, GraphSnapshot):
            return NotImplemented
        if self._store is not None and other._store is not None:
            return (
                self.num_nodes == other.num_nodes
                and np.array_equal(self.edge_array(), other.edge_array())
                and np.array_equal(self.attributes, other.attributes)
            )
        return np.array_equal(self.adjacency, other.adjacency) and np.array_equal(
            self.attributes, other.attributes
        )

    def __repr__(self) -> str:
        return (
            f"GraphSnapshot(N={self.num_nodes}, E={self.num_edges}, "
            f"F={self.num_attributes})"
        )

    # ------------------------------------------------------------------
    @classmethod
    def from_edges(
        cls,
        num_nodes: int,
        edges: Iterable[Tuple[int, int]],
        attributes: Optional[np.ndarray] = None,
    ) -> "GraphSnapshot":
        """Build a snapshot from a directed edge list (ignores self-loops)."""
        adj = np.zeros((num_nodes, num_nodes))
        pairs = np.asarray(list(edges), dtype=np.int64).reshape(-1, 2)
        if pairs.size:
            pairs = pairs[pairs[:, 0] != pairs[:, 1]]
            adj[pairs[:, 0], pairs[:, 1]] = 1.0
        return cls(adj, attributes)


def _validate_dense(adjacency: np.ndarray, attributes: np.ndarray) -> None:
    """Invariant checks in single vectorized passes (no sort/unique)."""
    if adjacency.size and np.any((adjacency != 0.0) & (adjacency != 1.0)):
        raise ValueError("adjacency must be binary (0/1)")
    if np.any(np.diagonal(adjacency) != 0):
        raise ValueError("self-loops are not allowed")
    if attributes.size and not np.all(np.isfinite(attributes)):
        raise ValueError("attributes contain non-finite values")
