"""Text-format interop: CSV edge streams and attribute tables.

The ``.npz`` persistence in :mod:`repro.graph.io` is compact but
opaque; real dataset exchange (SNAP dumps, database exports, the
DBMS-benchmarking use case of §I) happens in delimited text.  This
module reads and writes the two standard shapes:

* **Edge stream CSV** — one row per temporal edge: ``src,dst,t``
  (integer timesteps, the :class:`~repro.graph.temporal.TemporalEdgeList`
  view) via :func:`read_edge_csv` / :func:`write_edge_csv`, or
  ``src,dst,time`` with float timestamps (the
  :class:`~repro.graph.streams.InteractionStream` view) via
  :func:`read_event_csv` / :func:`write_event_csv`.
* **Attribute CSV** — one row per ``(t, node)`` pair followed by the F
  attribute values, via :func:`read_attribute_csv` /
  :func:`write_attribute_csv`.

All readers validate aggressively and fail with the offending line
number — silently mis-parsed benchmark data is worse than no data.
"""

from __future__ import annotations

import csv
import os
from typing import List, Optional, Tuple, Union

import numpy as np

from repro.graph.dynamic import DynamicAttributedGraph
from repro.graph.streams import InteractionStream
from repro.graph.temporal import TemporalEdgeList

PathLike = Union[str, os.PathLike]

_EDGE_HEADER = ["src", "dst", "t"]
_EVENT_HEADER = ["src", "dst", "time"]


def _parse_error(path: PathLike, line_no: int, message: str) -> ValueError:
    return ValueError(f"{os.fspath(path)}:{line_no}: {message}")


# ----------------------------------------------------------------------
# integer-timestep edge streams
# ----------------------------------------------------------------------
def write_edge_csv(edges: TemporalEdgeList, path: PathLike) -> None:
    """Write a temporal edge list as ``src,dst,t`` rows with a header."""
    with open(path, "w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(_EDGE_HEADER)
        for u, v, t in edges:
            writer.writerow([u, v, t])


def read_edge_csv(
    path: PathLike,
    num_nodes: Optional[int] = None,
    num_timesteps: Optional[int] = None,
) -> TemporalEdgeList:
    """Read ``src,dst,t`` rows into a :class:`TemporalEdgeList`.

    ``num_nodes`` / ``num_timesteps`` default to one past the maximum
    observed ids; pass them explicitly to pin the universe (required
    when isolated trailing nodes/timesteps matter).
    """
    rows: List[Tuple[int, int, int]] = []
    with open(path, newline="") as fh:
        reader = csv.reader(fh)
        header = next(reader, None)
        if header is None:
            raise _parse_error(path, 1, "empty file")
        if [h.strip().lower() for h in header] != _EDGE_HEADER:
            raise _parse_error(
                path, 1, f"expected header {','.join(_EDGE_HEADER)}"
            )
        for line_no, row in enumerate(reader, start=2):
            if not row:
                continue
            if len(row) != 3:
                raise _parse_error(path, line_no, f"expected 3 fields, got {len(row)}")
            try:
                u, v, t = (int(x) for x in row)
            except ValueError:
                raise _parse_error(path, line_no, f"non-integer field in {row}")
            if min(u, v, t) < 0:
                raise _parse_error(path, line_no, "negative id or timestep")
            rows.append((u, v, t))
    n = num_nodes if num_nodes is not None else (
        max((max(u, v) for u, v, _ in rows), default=-1) + 1
    )
    t_len = num_timesteps if num_timesteps is not None else (
        max((t for _, _, t in rows), default=-1) + 1
    )
    if n <= 0 or t_len <= 0:
        raise ValueError(f"{os.fspath(path)}: no edges and no explicit universe")
    return TemporalEdgeList(n, t_len, rows)


# ----------------------------------------------------------------------
# float-timestamp event streams
# ----------------------------------------------------------------------
def write_event_csv(stream: InteractionStream, path: PathLike) -> None:
    """Write an interaction stream as ``src,dst,time`` rows."""
    with open(path, "w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(_EVENT_HEADER)
        for u, v, t in stream:
            writer.writerow([u, v, repr(t)])


def read_event_csv(
    path: PathLike, num_nodes: Optional[int] = None
) -> InteractionStream:
    """Read ``src,dst,time`` rows into an :class:`InteractionStream`."""
    events: List[Tuple[int, int, float]] = []
    with open(path, newline="") as fh:
        reader = csv.reader(fh)
        header = next(reader, None)
        if header is None:
            raise _parse_error(path, 1, "empty file")
        if [h.strip().lower() for h in header] != _EVENT_HEADER:
            raise _parse_error(
                path, 1, f"expected header {','.join(_EVENT_HEADER)}"
            )
        for line_no, row in enumerate(reader, start=2):
            if not row:
                continue
            if len(row) != 3:
                raise _parse_error(path, line_no, f"expected 3 fields, got {len(row)}")
            try:
                u, v = int(row[0]), int(row[1])
                ts = float(row[2])
            except ValueError:
                raise _parse_error(path, line_no, f"malformed row {row}")
            events.append((u, v, ts))
    n = num_nodes if num_nodes is not None else (
        max((max(u, v) for u, v, _ in events), default=-1) + 1
    )
    if n <= 0:
        raise ValueError(f"{os.fspath(path)}: no events and no explicit universe")
    return InteractionStream(n, events)


# ----------------------------------------------------------------------
# attribute tables
# ----------------------------------------------------------------------
def write_attribute_csv(graph: DynamicAttributedGraph, path: PathLike) -> None:
    """Write the ``(T, N, F)`` attribute tensor as ``t,node,x0..`` rows."""
    f = graph.num_attributes
    header = ["t", "node"] + [f"x{i}" for i in range(f)]
    with open(path, "w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(header)
        for t, snap in enumerate(graph):
            for v in range(graph.num_nodes):
                writer.writerow(
                    [t, v] + [repr(float(x)) for x in snap.attributes[v]]
                )


def read_attribute_csv(path: PathLike) -> np.ndarray:
    """Read a :func:`write_attribute_csv` table back into ``(T, N, F)``.

    The table must be dense: every ``(t, node)`` pair present exactly
    once, with consistent F.
    """
    with open(path, newline="") as fh:
        reader = csv.reader(fh)
        header = next(reader, None)
        if header is None:
            raise _parse_error(path, 1, "empty file")
        if len(header) < 2 or header[0].strip().lower() != "t" or (
            header[1].strip().lower() != "node"
        ):
            raise _parse_error(path, 1, "expected header t,node,x0,...")
        f = len(header) - 2
        cells = {}
        for line_no, row in enumerate(reader, start=2):
            if not row:
                continue
            if len(row) != 2 + f:
                raise _parse_error(
                    path, line_no, f"expected {2 + f} fields, got {len(row)}"
                )
            try:
                t, v = int(row[0]), int(row[1])
                values = [float(x) for x in row[2:]]
            except ValueError:
                raise _parse_error(path, line_no, f"malformed row {row}")
            if (t, v) in cells:
                raise _parse_error(path, line_no, f"duplicate cell ({t}, {v})")
            cells[(t, v)] = values
    if not cells:
        raise ValueError(f"{os.fspath(path)}: no attribute rows")
    t_len = max(t for t, _ in cells) + 1
    n = max(v for _, v in cells) + 1
    if len(cells) != t_len * n:
        raise ValueError(
            f"{os.fspath(path)}: sparse table ({len(cells)} of {t_len * n} cells)"
        )
    out = np.zeros((t_len, n, f))
    for (t, v), values in cells.items():
        out[t, v] = values
    return out


# ----------------------------------------------------------------------
# whole-graph round trip
# ----------------------------------------------------------------------
def export_graph_csv(
    graph: DynamicAttributedGraph, edge_path: PathLike, attr_path: PathLike
) -> None:
    """Write a dynamic attributed graph as an edge CSV + attribute CSV."""
    write_edge_csv(TemporalEdgeList.from_dynamic_graph(graph), edge_path)
    write_attribute_csv(graph, attr_path)


def import_graph_csv(
    edge_path: PathLike,
    attr_path: Optional[PathLike] = None,
    num_nodes: Optional[int] = None,
    num_timesteps: Optional[int] = None,
) -> DynamicAttributedGraph:
    """Rebuild a dynamic attributed graph from CSV files.

    The attribute table, when given, pins the node/timestep universe;
    its shape must be consistent with the edge stream.
    """
    attrs = read_attribute_csv(attr_path) if attr_path is not None else None
    if attrs is not None:
        num_timesteps = num_timesteps or attrs.shape[0]
        num_nodes = num_nodes or attrs.shape[1]
    edges = read_edge_csv(edge_path, num_nodes=num_nodes, num_timesteps=num_timesteps)
    return edges.to_dynamic_graph(attributes=attrs)
