"""Temporal edge stream view: ``(u, v, t)`` triples.

The random-walk baselines (TagGen, TGGAN, TIGGER) operate on edge
streams rather than snapshot tensors; this module provides a lossless
bridge between the two representations (attributes ride along on the
snapshot side only — the stream view is structure + time, exactly what
the paper's walk-based baselines consume).
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.graph.dynamic import DynamicAttributedGraph
from repro.graph.snapshot import GraphSnapshot


class TemporalEdgeList:
    """An ordered multiset of directed temporal edges ``(u, v, t)``."""

    def __init__(self, num_nodes: int, num_timesteps: int,
                 edges: Sequence[Tuple[int, int, int]] = ()):
        self.num_nodes = int(num_nodes)
        self.num_timesteps = int(num_timesteps)
        self.edges: List[Tuple[int, int, int]] = []
        for u, v, t in edges:
            self.add(u, v, t)

    def add(self, u: int, v: int, t: int) -> None:
        """Append edge ``(u, v, t)`` after range checks; self-loops are dropped."""
        if not (0 <= u < self.num_nodes and 0 <= v < self.num_nodes):
            raise ValueError(f"edge endpoints ({u}, {v}) out of range")
        if not 0 <= t < self.num_timesteps:
            raise ValueError(f"timestep {t} out of range 0..{self.num_timesteps - 1}")
        if u == v:
            return
        self.edges.append((int(u), int(v), int(t)))

    def __len__(self) -> int:
        return len(self.edges)

    def __iter__(self):
        return iter(self.edges)

    # ------------------------------------------------------------------
    def edges_at(self, t: int) -> List[Tuple[int, int]]:
        """Directed ``(src, dst)`` pairs active at timestep ``t``."""
        return [(u, v) for u, v, tt in self.edges if tt == t]

    def neighbors_at(self, t: int) -> Dict[int, List[int]]:
        """Out-neighbour adjacency map for timestep ``t``."""
        adj: Dict[int, List[int]] = {}
        for u, v, tt in self.edges:
            if tt == t:
                adj.setdefault(u, []).append(v)
        return adj

    def temporal_neighbors(self) -> Dict[int, List[Tuple[int, int]]]:
        """Map node -> list of (neighbour, time) over out-edges (all t)."""
        adj: Dict[int, List[Tuple[int, int]]] = {}
        for u, v, t in self.edges:
            adj.setdefault(u, []).append((v, t))
        return adj

    # ------------------------------------------------------------------
    @classmethod
    def from_dynamic_graph(cls, graph: DynamicAttributedGraph) -> "TemporalEdgeList":
        """Flatten snapshots into the stream view (deduplicated per step)."""
        tel = cls(graph.num_nodes, graph.num_timesteps)
        for t, snap in enumerate(graph):
            for u, v in snap.edges():
                tel.add(u, v, t)
        return tel

    def to_dynamic_graph(
        self, attributes: np.ndarray | None = None
    ) -> DynamicAttributedGraph:
        """Re-bucket edges by timestep into snapshots.

        ``attributes`` is an optional ``(T, N, F)`` tensor attached
        verbatim (the stream itself carries no attributes).
        """
        snaps = []
        for t in range(self.num_timesteps):
            adj = np.zeros((self.num_nodes, self.num_nodes))
            for u, v in self.edges_at(t):
                adj[u, v] = 1.0
            attr = None if attributes is None else attributes[t]
            snaps.append(GraphSnapshot(adj, attr))
        return DynamicAttributedGraph(snaps)

    def subsample(self, max_edges: int, rng: np.random.Generator) -> "TemporalEdgeList":
        """Uniformly subsample at most ``max_edges`` temporal edges.

        Used by the scalability benches (Tables III/IV) which sweep the
        number of temporal edges drawn from GDELT.
        """
        if len(self.edges) <= max_edges:
            return TemporalEdgeList(self.num_nodes, self.num_timesteps, self.edges)
        idx = rng.choice(len(self.edges), size=max_edges, replace=False)
        picked = [self.edges[i] for i in sorted(idx.tolist())]
        return TemporalEdgeList(self.num_nodes, self.num_timesteps, picked)
