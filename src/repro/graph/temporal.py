"""Temporal edge stream view: ``(u, v, t)`` triples.

The random-walk baselines (TagGen, TGGAN, TIGGER) operate on edge
streams rather than snapshot tensors; this module provides a lossless
bridge between the two representations (attributes ride along on the
snapshot side only — the stream view is structure + time, exactly what
the paper's walk-based baselines consume).

Internally the stream is *columnar*: three parallel int64 arrays
``(src, dst, t)`` in insertion order, so the walk samplers consume it
zero-copy via :meth:`TemporalEdgeList.arrays`.  Unlike the canonical
:class:`~repro.graph.store.TemporalEdgeStore` (sorted, deduplicated),
the stream view is an ordered **multiset** — duplicate temporal edges
carry multiplicity, which the walk-merging stage uses as frequency
evidence.  :meth:`from_dynamic_graph` wraps the graph's store columns
without copying; :meth:`to_store` / :meth:`to_dynamic_graph` collapse
multiplicity back into the canonical store.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.graph.dynamic import DynamicAttributedGraph
from repro.graph.store import TemporalEdgeStore


class TemporalEdgeList:
    """An ordered multiset of directed temporal edges ``(u, v, t)``."""

    def __init__(self, num_nodes: int, num_timesteps: int,
                 edges: Sequence[Tuple[int, int, int]] = ()):
        self.num_nodes = int(num_nodes)
        self.num_timesteps = int(num_timesteps)
        self._src = np.zeros(0, dtype=np.int64)
        self._dst = np.zeros(0, dtype=np.int64)
        self._t = np.zeros(0, dtype=np.int64)
        # add() appends to Python lists; reads flush into the columns
        self._pending: List[Tuple[int, int, int]] = []
        edges = list(edges)
        if edges:
            arr = np.asarray(edges, dtype=np.int64).reshape(-1, 3)
            self._ingest(arr[:, 0], arr[:, 1], arr[:, 2])

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def from_arrays(
        cls,
        src,
        dst,
        t,
        num_nodes: Optional[int] = None,
        num_timesteps: Optional[int] = None,
        *,
        copy: bool = True,
    ) -> "TemporalEdgeList":
        """Vectorized bulk ingestion of parallel ``(src, dst, t)`` columns.

        The columnar replacement for per-edge :meth:`add` loops:
        validates ranges, drops self-loops and keeps input order, all
        in whole-array operations.  ``num_nodes`` / ``num_timesteps``
        default to one past the maximum observed ids.  ``copy=False``
        adopts the arrays verbatim (internal zero-copy path; caller
        guarantees int64 dtype and validity).
        """
        src = np.asarray(src, dtype=np.int64).reshape(-1)
        dst = np.asarray(dst, dtype=np.int64).reshape(-1)
        t = np.asarray(t, dtype=np.int64).reshape(-1)
        if not (src.size == dst.size == t.size):
            raise ValueError(
                f"column lengths differ: {src.size}/{dst.size}/{t.size}"
            )
        if num_nodes is None:
            num_nodes = int(max(src.max(), dst.max())) + 1 if src.size else 0
        if num_timesteps is None:
            num_timesteps = int(t.max()) + 1 if t.size else 1
        tel = cls(num_nodes, num_timesteps)
        if copy:
            tel._ingest(src, dst, t)
        else:
            tel._src, tel._dst, tel._t = src, dst, t
        return tel

    @classmethod
    def from_store(cls, store: TemporalEdgeStore) -> "TemporalEdgeList":
        """Zero-copy stream view over a store's columns (sorted order)."""
        tel = cls(store.num_nodes, store.num_timesteps)
        tel._src, tel._dst, tel._t = store.src, store.dst, store.t
        return tel

    @classmethod
    def from_dynamic_graph(cls, graph: DynamicAttributedGraph) -> "TemporalEdgeList":
        """Flatten snapshots into the stream view (deduplicated per step).

        Rides the graph's canonical store — zero-copy when the graph is
        store-backed, one vectorized scan (cached on the graph)
        otherwise.
        """
        return cls.from_store(graph.store)

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def add(self, u: int, v: int, t: int) -> None:
        """Append edge ``(u, v, t)`` after range checks; self-loops are dropped."""
        if not (0 <= u < self.num_nodes and 0 <= v < self.num_nodes):
            raise ValueError(f"edge endpoints ({u}, {v}) out of range")
        if not 0 <= t < self.num_timesteps:
            raise ValueError(f"timestep {t} out of range 0..{self.num_timesteps - 1}")
        if u == v:
            return
        self._pending.append((int(u), int(v), int(t)))

    def _ingest(self, src: np.ndarray, dst: np.ndarray, t: np.ndarray) -> None:
        if src.size:
            if src.min() < 0 or dst.min() < 0 or (
                max(src.max(), dst.max()) >= self.num_nodes
            ):
                raise ValueError("edge endpoints out of range")
            if t.min() < 0 or t.max() >= self.num_timesteps:
                raise ValueError(
                    f"timesteps out of range 0..{self.num_timesteps - 1}"
                )
        keep = src != dst
        src, dst, t = src[keep], dst[keep], t[keep]
        self._src = np.concatenate([self._src, src])
        self._dst = np.concatenate([self._dst, dst])
        self._t = np.concatenate([self._t, t])

    def _flush(self) -> None:
        if self._pending:
            arr = np.asarray(self._pending, dtype=np.int64).reshape(-1, 3)
            self._pending.clear()
            # add() already validated and dropped self-loops
            self._src = np.concatenate([self._src, arr[:, 0]])
            self._dst = np.concatenate([self._dst, arr[:, 1]])
            self._t = np.concatenate([self._t, arr[:, 2]])

    # ------------------------------------------------------------------
    # access
    # ------------------------------------------------------------------
    def arrays(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """The ``(src, dst, t)`` columns in insertion order (views)."""
        self._flush()
        return self._src, self._dst, self._t

    @property
    def edges(self) -> List[Tuple[int, int, int]]:
        """Edge triples as Python tuples (legacy materialized view)."""
        src, dst, t = self.arrays()
        return list(zip(src.tolist(), dst.tolist(), t.tolist()))

    def __len__(self) -> int:
        self._flush()
        return int(self._src.size)

    def __iter__(self):
        return iter(self.edges)

    # ------------------------------------------------------------------
    def edges_at(self, t: int) -> List[Tuple[int, int]]:
        """Directed ``(src, dst)`` pairs active at timestep ``t``."""
        src, dst, tt = self.arrays()
        mask = tt == t
        return list(zip(src[mask].tolist(), dst[mask].tolist()))

    def neighbors_at(self, t: int) -> Dict[int, List[int]]:
        """Out-neighbour adjacency map for timestep ``t``."""
        adj: Dict[int, List[int]] = {}
        for u, v in self.edges_at(t):
            adj.setdefault(u, []).append(v)
        return adj

    def temporal_neighbors(self) -> Dict[int, List[Tuple[int, int]]]:
        """Map node -> list of (neighbour, time) over out-edges (all t)."""
        src, dst, tt = self.arrays()
        adj: Dict[int, List[Tuple[int, int]]] = {}
        for u, v, t in zip(src.tolist(), dst.tolist(), tt.tolist()):
            adj.setdefault(u, []).append((v, t))
        return adj

    # ------------------------------------------------------------------
    def to_store(
        self, attributes: Optional[np.ndarray] = None
    ) -> TemporalEdgeStore:
        """Collapse the multiset into the canonical (deduplicated) store."""
        src, dst, t = self.arrays()
        return TemporalEdgeStore(
            self.num_nodes, self.num_timesteps, src, dst, t, attributes,
            validate=attributes is not None,
        )

    def to_dynamic_graph(
        self, attributes: np.ndarray | None = None
    ) -> DynamicAttributedGraph:
        """Re-bucket edges by timestep into a store-backed dynamic graph.

        ``attributes`` is an optional ``(T, N, F)`` tensor attached
        verbatim (the stream itself carries no attributes).
        """
        return DynamicAttributedGraph.from_store(self.to_store(attributes))

    def subsample(self, max_edges: int, rng: np.random.Generator) -> "TemporalEdgeList":
        """Uniformly subsample at most ``max_edges`` temporal edges.

        Used by the scalability benches (Tables III/IV) which sweep the
        number of temporal edges drawn from GDELT.
        """
        src, dst, t = self.arrays()
        if src.size <= max_edges:
            return TemporalEdgeList.from_arrays(
                src.copy(), dst.copy(), t.copy(),
                self.num_nodes, self.num_timesteps, copy=False,
            )
        idx = np.sort(rng.choice(src.size, size=max_edges, replace=False))
        return TemporalEdgeList.from_arrays(
            src[idx], dst[idx], t[idx],
            self.num_nodes, self.num_timesteps, copy=False,
        )
