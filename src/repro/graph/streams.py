"""Continuous-time interaction streams and snapshot discretization.

The paper's datasets (Emails-DNC, Bitcoin-Alpha, Wiki-Vote, GDELT, ...)
are natively *continuous-time* edge streams: each interaction is a
``(src, dst, timestamp)`` event with a real-valued timestamp.  The
paper evaluates on *discrete* snapshot sequences obtained by bucketing
those events into ``T`` windows (§II-A).  This module provides that
bridge:

* :class:`InteractionStream` — an ordered stream of timestamped
  directed interaction events, with validation, slicing, merging and
  summary statistics.
* Discretization policies mapping a stream onto ``T`` snapshot buckets:
  :func:`uniform_windows` (equal-width time windows, what the paper
  uses), :func:`equal_count_windows` (equal events per snapshot, useful
  for bursty streams), and :func:`session_windows` (gap-based
  segmentation).
* :func:`discretize` — apply a policy and produce a
  :class:`~repro.graph.dynamic.DynamicAttributedGraph` (structure only;
  attach attributes separately) or a
  :class:`~repro.graph.temporal.TemporalEdgeList`.

The inverse direction (snapshots back to a stream with synthetic
within-window timestamps) is provided by :func:`to_stream`, which the
efficiency benches use to hand walk-based baselines the event view
they natively consume.

For event volumes that should never be resident at once, the
*streaming ingestion* path (:class:`StreamingStoreBuilder`,
:func:`ingest_stream`) folds arbitrarily long integer-timestep
``(src, dst, t)`` event streams into a canonical
:class:`~repro.graph.store.TemporalEdgeStore` under a configurable
memory budget: events accumulate in fixed-size column chunks, each
full chunk is canonicalized (self-loop drop, sort, dedup) and merged
into tiered sorted runs with the vectorized merge kernel — the
transient working set is one chunk, never the whole stream.

Both of the above are *offline*: ingestion completes before the store
is read.  The online counterpart — accepting events while readers
take immutable epoch snapshots, the query-while-ingesting shape of
the live serving tier — is :class:`~repro.graph.live.LiveStoreBuilder`
in :mod:`repro.graph.live`; its per-timestep sealing shares the
store's canonicalization kernel, so a finished live stream and an
:func:`ingest_stream` run over the same events build equal stores.
"""

from __future__ import annotations

import bisect
import hashlib
import os
from dataclasses import dataclass
from typing import Callable, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.graph.dynamic import DynamicAttributedGraph
from repro.graph.store import (
    TemporalEdgeStore,
    TemporalEdgeStoreBuilder,
    _canonicalize_columns,
    merge_canonical_runs,
)
from repro.graph.temporal import TemporalEdgeList
from repro.reliability import CheckpointError, fault_injector

#: One timestamped directed interaction: (src, dst, time).
Event = Tuple[int, int, float]


@dataclass(frozen=True)
class StreamStatistics:
    """Summary of an interaction stream."""

    num_nodes: int
    num_events: int
    time_span: float
    events_per_node: float
    unique_pairs: int

    def __str__(self) -> str:
        return (
            f"N={self.num_nodes} events={self.num_events} "
            f"span={self.time_span:.3g} pairs={self.unique_pairs}"
        )


class InteractionStream:
    """An ordered stream of timestamped directed interactions.

    Parameters
    ----------
    num_nodes:
        Size of the node universe; endpoints must be in ``[0, N)``.
    events:
        Iterable of ``(src, dst, time)`` triples.  Events are sorted by
        time on construction; ties keep input order (stable sort).

    Self-loops are rejected (matching :class:`GraphSnapshot`), as are
    non-finite timestamps.
    """

    def __init__(self, num_nodes: int, events: Iterable[Event] = ()):
        self.num_nodes = int(num_nodes)
        if self.num_nodes <= 0:
            raise ValueError("num_nodes must be positive")
        checked: List[Event] = []
        for u, v, t in events:
            u, v, t = int(u), int(v), float(t)
            if not (0 <= u < self.num_nodes and 0 <= v < self.num_nodes):
                raise ValueError(f"event endpoints ({u}, {v}) out of range")
            if u == v:
                raise ValueError(f"self-loop event on node {u}")
            if not np.isfinite(t):
                raise ValueError(f"non-finite timestamp {t}")
            checked.append((u, v, t))
        checked.sort(key=lambda e: e[2])
        self.events: List[Event] = checked
        self._times = [e[2] for e in checked]

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, InteractionStream):
            return NotImplemented
        return self.num_nodes == other.num_nodes and self.events == other.events

    def __repr__(self) -> str:
        return f"InteractionStream({self.statistics()})"

    @property
    def start_time(self) -> float:
        """Timestamp of the earliest event (raises on empty streams)."""
        if not self.events:
            raise ValueError("empty stream has no start time")
        return self._times[0]

    @property
    def end_time(self) -> float:
        """Timestamp of the latest event (raises on empty streams)."""
        if not self.events:
            raise ValueError("empty stream has no end time")
        return self._times[-1]

    def statistics(self) -> StreamStatistics:
        """Node/event/span summary of the stream."""
        span = (self.end_time - self.start_time) if self.events else 0.0
        pairs = {(u, v) for u, v, _ in self.events}
        return StreamStatistics(
            num_nodes=self.num_nodes,
            num_events=len(self.events),
            time_span=span,
            events_per_node=len(self.events) / self.num_nodes,
            unique_pairs=len(pairs),
        )

    # ------------------------------------------------------------------
    def between(self, t0: float, t1: float) -> "InteractionStream":
        """Events with ``t0 <= time < t1`` (binary search, O(log n + k))."""
        lo = bisect.bisect_left(self._times, t0)
        hi = bisect.bisect_left(self._times, t1)
        return InteractionStream(self.num_nodes, self.events[lo:hi])

    def merged(self, other: "InteractionStream") -> "InteractionStream":
        """Union of two streams over the same node universe."""
        if other.num_nodes != self.num_nodes:
            raise ValueError(
                f"cannot merge streams over {self.num_nodes} and "
                f"{other.num_nodes} nodes"
            )
        return InteractionStream(self.num_nodes, self.events + other.events)

    def shifted(self, delta: float) -> "InteractionStream":
        """Stream with all timestamps translated by ``delta``."""
        return InteractionStream(
            self.num_nodes, [(u, v, t + delta) for u, v, t in self.events]
        )

    def subsampled(
        self, max_events: int, rng: np.random.Generator
    ) -> "InteractionStream":
        """Uniformly keep at most ``max_events`` events."""
        if len(self.events) <= max_events:
            return InteractionStream(self.num_nodes, self.events)
        idx = rng.choice(len(self.events), size=max_events, replace=False)
        return InteractionStream(
            self.num_nodes, [self.events[i] for i in sorted(idx.tolist())]
        )

    def inter_event_times(self) -> np.ndarray:
        """Gaps between consecutive events (empty for < 2 events)."""
        return np.diff(np.asarray(self._times))


# ----------------------------------------------------------------------
# Discretization policies: stream -> list of T event buckets
# ----------------------------------------------------------------------
#: A policy maps a stream and a target T to per-snapshot event buckets.
DiscretizationPolicy = Callable[
    [InteractionStream, int], List[List[Event]]
]


def uniform_windows(
    stream: InteractionStream,
    num_timesteps: int,
    t0: Optional[float] = None,
    t1: Optional[float] = None,
) -> List[List[Event]]:
    """Equal-width time windows over ``[t0, t1]`` (the paper's choice).

    The span defaults to the stream's own ``[start, end]``; pass ``t0`` /
    ``t1`` to pin it (e.g. ``functools.partial(uniform_windows, t0=0.0,
    t1=T)`` makes :func:`to_stream` followed by :func:`discretize` an
    exact round trip even when boundary snapshots are empty).  The final
    window is closed on the right so the last event lands in bucket
    ``T - 1``.
    """
    _check_discretization_args(stream, num_timesteps)
    t0 = stream.start_time if t0 is None else float(t0)
    t1 = stream.end_time if t1 is None else float(t1)
    if t1 < t0:
        raise ValueError(f"invalid window span [{t0}, {t1}]")
    width = (t1 - t0) / num_timesteps
    buckets: List[List[Event]] = [[] for _ in range(num_timesteps)]
    for u, v, t in stream:
        if width == 0:
            k = 0
        else:
            k = min(int((t - t0) / width), num_timesteps - 1)
        buckets[k].append((u, v, t))
    return buckets


def equal_count_windows(
    stream: InteractionStream, num_timesteps: int
) -> List[List[Event]]:
    """Windows holding (almost) equal numbers of events.

    Bursty streams produce near-empty snapshots under uniform windows;
    equal-count windows keep per-snapshot edge counts stable instead.
    Events are never split across buckets out of time order.
    """
    _check_discretization_args(stream, num_timesteps)
    counts = _balanced_partition(len(stream), num_timesteps)
    buckets: List[List[Event]] = []
    pos = 0
    for c in counts:
        buckets.append(stream.events[pos:pos + c])
        pos += c
    return buckets


def session_windows(
    stream: InteractionStream, num_timesteps: int
) -> List[List[Event]]:
    """Gap-based segmentation merged down to ``T`` buckets.

    Splits the stream at its ``T - 1`` largest inter-event gaps — the
    natural "session" boundaries of activity-driven networks (Perra et
    al., 2012).  With fewer than ``T`` events, trailing buckets are
    empty.
    """
    _check_discretization_args(stream, num_timesteps)
    n = len(stream)
    if n <= num_timesteps:
        buckets = [[e] for e in stream.events]
        buckets += [[] for _ in range(num_timesteps - n)]
        return buckets
    gaps = stream.inter_event_times()
    # indices i where a boundary is placed between event i and i+1
    cut_after = np.sort(np.argsort(-gaps)[: num_timesteps - 1])
    buckets = []
    start = 0
    for cut in cut_after.tolist():
        buckets.append(stream.events[start:cut + 1])
        start = cut + 1
    buckets.append(stream.events[start:])
    return buckets


def _check_discretization_args(
    stream: InteractionStream, num_timesteps: int
) -> None:
    if num_timesteps <= 0:
        raise ValueError("num_timesteps must be positive")
    if not len(stream):
        raise ValueError("cannot discretize an empty stream")


def _balanced_partition(total: int, parts: int) -> List[int]:
    """Split ``total`` items into ``parts`` counts differing by <= 1."""
    base, extra = divmod(total, parts)
    return [base + (1 if i < extra else 0) for i in range(parts)]


# ----------------------------------------------------------------------
# Conversions
# ----------------------------------------------------------------------
def discretize(
    stream: InteractionStream,
    num_timesteps: int,
    policy: DiscretizationPolicy = uniform_windows,
    attributes: Optional[np.ndarray] = None,
) -> DynamicAttributedGraph:
    """Bucket a stream into a ``T``-snapshot dynamic graph.

    Repeated interactions within one window collapse into a single
    directed edge (the paper's snapshot model is unweighted).

    Parameters
    ----------
    stream:
        The continuous-time interaction stream.
    num_timesteps:
        Number of snapshots ``T``.
    policy:
        Windowing policy; one of :func:`uniform_windows` (default),
        :func:`equal_count_windows`, :func:`session_windows`, or any
        callable with the same signature.
    attributes:
        Optional ``(T, N, F)`` attribute tensor attached verbatim.
    """
    buckets = policy(stream, num_timesteps)
    if len(buckets) != num_timesteps:
        raise ValueError(
            f"policy returned {len(buckets)} buckets, expected {num_timesteps}"
        )
    if attributes is not None and not np.all(np.isfinite(attributes)):
        raise ValueError("attributes contain non-finite values")
    builder = TemporalEdgeStoreBuilder(
        stream.num_nodes,
        0 if attributes is None else np.asarray(attributes).shape[-1],
    )
    for t, bucket in enumerate(buckets):
        pairs = np.asarray(
            [(u, v) for u, v, _ in bucket], dtype=np.int64
        ).reshape(-1, 2)
        attr = None if attributes is None else attributes[t]
        builder.add_step(pairs[:, 0], pairs[:, 1], attr)
    return DynamicAttributedGraph.from_store(builder.build())


def discretize_to_edge_list(
    stream: InteractionStream,
    num_timesteps: int,
    policy: DiscretizationPolicy = uniform_windows,
) -> TemporalEdgeList:
    """Bucket a stream into the integer-timestep edge-stream view."""
    buckets = policy(stream, num_timesteps)
    srcs, dsts, ts = [], [], []
    for t, bucket in enumerate(buckets):
        pairs = np.asarray(
            [(u, v) for u, v, _ in bucket], dtype=np.int64
        ).reshape(-1, 2)
        if not len(pairs):
            continue
        # order-preserving per-bucket dedup: keep each pair's first
        # occurrence (np.unique returns first indices on stable input)
        keys = pairs[:, 0] * stream.num_nodes + pairs[:, 1]
        _, first = np.unique(keys, return_index=True)
        keep = np.sort(first)
        srcs.append(pairs[keep, 0])
        dsts.append(pairs[keep, 1])
        ts.append(np.full(keep.size, t, dtype=np.int64))
    if not srcs:
        return TemporalEdgeList(stream.num_nodes, num_timesteps)
    return TemporalEdgeList.from_arrays(
        np.concatenate(srcs),
        np.concatenate(dsts),
        np.concatenate(ts),
        stream.num_nodes,
        num_timesteps,
        copy=False,
    )


def to_stream(
    graph: DynamicAttributedGraph,
    window: float = 1.0,
    rng: Optional[np.random.Generator] = None,
) -> InteractionStream:
    """Expand snapshots back into a continuous-time stream.

    Each edge of snapshot ``t`` becomes one event with a timestamp in
    ``[t * window, (t + 1) * window)``: at the window midpoint when
    ``rng`` is ``None``, or uniform within the window otherwise.  This
    is the event view the walk-based baselines natively consume.
    """
    if window <= 0:
        raise ValueError("window must be positive")
    store = graph.store  # canonical columns, sorted by (t, src, dst)
    if rng is None:
        times = store.t * window + window / 2
    else:
        times = store.t * window + rng.uniform(0.0, window, size=store.num_edges)
    events = [
        (u, v, ts)
        for u, v, ts in zip(
            store.src.tolist(), store.dst.tolist(), times.tolist()
        )
    ]
    return InteractionStream(graph.num_nodes, events)


# ----------------------------------------------------------------------
# Bounded-memory streaming ingestion
# ----------------------------------------------------------------------

#: Approximate transient bytes per buffered event while a chunk is
#: canonicalized: three int64 columns (24) + composite sort key (8) +
#: lexsort order array (8) + sorted column copies (24).
_BYTES_PER_EVENT = 64

#: Floor on the derived chunk size — below this the per-chunk numpy
#: call overhead dominates and the merge tier count explodes.
_MIN_CHUNK_EVENTS = 256

_CHECKPOINT_MAGIC = "repro-ingest-checkpoint"
_CHECKPOINT_VERSION = 1


def _checkpoint_digest(
    num_nodes: int,
    num_timesteps: int,
    chunk_events: int,
    events_ingested: int,
    runs: Sequence[Tuple[np.ndarray, np.ndarray, np.ndarray]],
) -> str:
    """SHA-256 over a checkpoint's logical payload (meta + run columns)."""
    h = hashlib.sha256()
    h.update(
        f"{num_nodes},{num_timesteps},{chunk_events},"
        f"{events_ingested},{len(runs)}".encode()
    )
    for src, dst, t in runs:
        for col in (src, dst, t):
            h.update(str(col.size).encode())
            h.update(np.ascontiguousarray(col).tobytes())
    return h.hexdigest()


class StreamingStoreBuilder:
    """Fold an unbounded ``(src, dst, t)`` event stream into a store.

    The spill-free counterpart of
    :class:`~repro.graph.store.TemporalEdgeStoreBuilder` for producers
    that deliver events in arbitrary order and volume (ingestion
    pipelines, logs, generators running elsewhere).  Events accumulate
    in a fixed-size column chunk; each full chunk is canonicalized
    (self-loop drop, ``(t, src, dst)`` sort, dedup) in O(C log C) and
    merged into *tiered sorted runs*: a new run is merged with its
    neighbour whenever the neighbour is less than twice its size, so
    at most O(log(M / C)) runs exist at any time and total merge work
    is O(M log(M / C)) — never a full-stream sort, never more than one
    chunk of unsorted data resident.

    Parameters
    ----------
    num_nodes, num_timesteps:
        The store's fixed universe ``N`` and sequence length ``T``;
        endpoints and timesteps are range-checked on arrival.
    chunk_events:
        Events per chunk (the bounded working set).  Default 65536.
    memory_budget_bytes:
        Alternative sizing: the chunk is sized so its transient
        canonicalization working set (~64 bytes/event — columns, sort
        key, order array, sorted copies) stays under the budget.
        Overrides ``chunk_events``.

    ``build()`` may be called at any point — it compacts the runs into
    one and returns a store sharing those columns; ingestion can
    continue afterwards and ``build()`` again later.
    """

    def __init__(
        self,
        num_nodes: int,
        num_timesteps: int,
        *,
        chunk_events: int = 65536,
        memory_budget_bytes: Optional[int] = None,
    ):
        self.num_nodes = int(num_nodes)
        self.num_timesteps = int(num_timesteps)
        if self.num_nodes <= 0:
            raise ValueError("num_nodes must be positive")
        if self.num_timesteps < 1:
            raise ValueError("num_timesteps must be >= 1")
        if memory_budget_bytes is not None:
            if memory_budget_bytes <= 0:
                raise ValueError("memory_budget_bytes must be positive")
            chunk_events = memory_budget_bytes // _BYTES_PER_EVENT
        self.chunk_events = max(int(chunk_events), _MIN_CHUNK_EVENTS)
        self._buf: List[Tuple[np.ndarray, np.ndarray, np.ndarray]] = []
        self._buffered = 0
        self._scalar_buf: List[Tuple[int, int, int]] = []
        # canonical sorted runs, largest first (LSM-style tiers)
        self._runs: List[Tuple[np.ndarray, np.ndarray, np.ndarray]] = []
        self.events_ingested = 0

    # ------------------------------------------------------------------
    @property
    def num_runs(self) -> int:
        """Current number of sorted runs (O(log(M / chunk)) by design)."""
        return len(self._runs)

    @property
    def num_buffered(self) -> int:
        """Events waiting in the unsorted chunk buffer."""
        return self._buffered + len(self._scalar_buf)

    def add(self, u: int, v: int, t: int) -> None:
        """Ingest one event (range-checked; self-loops dropped at seal)."""
        if not (0 <= u < self.num_nodes and 0 <= v < self.num_nodes):
            raise ValueError(f"event endpoints ({u}, {v}) out of range")
        if not 0 <= t < self.num_timesteps:
            raise ValueError(
                f"timestep {t} out of range 0..{self.num_timesteps - 1}"
            )
        self._scalar_buf.append((int(u), int(v), int(t)))
        self.events_ingested += 1
        if len(self._scalar_buf) >= min(self.chunk_events, 4096):
            self._flush_scalars()
            if self._buffered >= self.chunk_events:
                self._seal_chunk()

    def extend(self, src, dst, t) -> None:
        """Ingest a batch of parallel ``(src, dst, t)`` columns.

        The batch is validated vectorized, then absorbed in
        chunk-sized slices — a batch larger than the chunk never
        inflates the working set.
        """
        src = np.asarray(src, dtype=np.int64).reshape(-1)
        dst = np.asarray(dst, dtype=np.int64).reshape(-1)
        t = np.asarray(t, dtype=np.int64).reshape(-1)
        if not (src.size == dst.size == t.size):
            raise ValueError(
                f"column lengths differ: {src.size}/{dst.size}/{t.size}"
            )
        if src.size == 0:
            return
        if (
            min(src.min(), dst.min()) < 0
            or max(src.max(), dst.max()) >= self.num_nodes
        ):
            raise ValueError("event endpoints out of range")
        if t.min() < 0 or t.max() >= self.num_timesteps:
            raise ValueError(
                f"timesteps out of range 0..{self.num_timesteps - 1}"
            )
        self._flush_scalars()
        if self._buffered >= self.chunk_events:
            self._seal_chunk()
        pos = 0
        while pos < src.size:
            take = min(self.chunk_events - self._buffered, src.size - pos)
            self._buf.append(
                (src[pos:pos + take], dst[pos:pos + take], t[pos:pos + take])
            )
            self._buffered += take
            self.events_ingested += take
            pos += take
            if self._buffered >= self.chunk_events:
                self._seal_chunk()

    # ------------------------------------------------------------------
    def _flush_scalars(self) -> None:
        if not self._scalar_buf:
            return
        arr = np.asarray(self._scalar_buf, dtype=np.int64).reshape(-1, 3)
        self._scalar_buf.clear()
        self._buf.append((arr[:, 0], arr[:, 1], arr[:, 2]))
        self._buffered += arr.shape[0]

    def _seal_chunk(self) -> None:
        """Canonicalize the buffered chunk and fold it into the tiers."""
        if not self._buf:
            return
        fault_injector.fire("ingest.seal", key=self.events_ingested)
        src = np.concatenate([b[0] for b in self._buf])
        dst = np.concatenate([b[1] for b in self._buf])
        t = np.concatenate([b[2] for b in self._buf])
        self._buf.clear()
        self._buffered = 0
        src, dst, t = _canonicalize_columns(src, dst, t, self.num_nodes)
        if not src.size:
            return
        self._runs.append((src, dst, t))
        # tiered compaction: merge neighbours while the run above is
        # not at least twice this run's size (amortized O(M log(M/C)))
        while (
            len(self._runs) >= 2
            and self._runs[-2][0].size < 2 * self._runs[-1][0].size
        ):
            b = self._runs.pop()
            a = self._runs.pop()
            self._runs.append(merge_canonical_runs([a, b], self.num_nodes))

    # ------------------------------------------------------------------
    def build(
        self, attributes: Optional[np.ndarray] = None
    ) -> TemporalEdgeStore:
        """Compact all runs and return the canonical store.

        ``attributes`` is an optional ``(T, N, F)`` block attached
        verbatim (validated by the store).  The builder stays usable:
        the compacted columns become its single run, and further
        ingestion merges against them.
        """
        self._flush_scalars()
        self._seal_chunk()
        if len(self._runs) > 1:
            self._runs = [merge_canonical_runs(self._runs, self.num_nodes)]
        if self._runs:
            src, dst, t = self._runs[0]
        else:
            src = dst = t = np.zeros(0, dtype=np.int64)
        return TemporalEdgeStore(
            self.num_nodes,
            self.num_timesteps,
            src,
            dst,
            t,
            attributes,
            validate=attributes is not None,
            canonical=True,
        )

    # ------------------------------------------------------------------
    # crash safety: checkpoint / resume (docs/reliability.md)
    # ------------------------------------------------------------------
    def checkpoint(self, path) -> None:
        """Atomically persist the builder's state to ``path``.

        The buffered chunk is sealed first (canonicalize + merge are
        deterministic and partition-invariant, so sealing early never
        changes the final store), then the sorted runs, the universe
        and the ``events_ingested`` counter are written to a single
        ``.npz`` through a temp file + ``os.replace`` — a crash during
        ``checkpoint`` leaves the previous checkpoint intact.  A
        SHA-256 over the payload is stored alongside and verified by
        :meth:`from_checkpoint`.

        ``events_ingested`` is the resume cursor: a restarted ingestion
        replays the same event stream and skips that many events, so
        checkpointing only helps producers that can replay
        deterministically from an offset (logs, files, generators
        re-run with the same seed).
        """
        self._flush_scalars()
        self._seal_chunk()
        payload = {
            "__checkpoint__": np.array(_CHECKPOINT_MAGIC),
            "version": np.array(_CHECKPOINT_VERSION),
            "num_nodes": np.array(self.num_nodes),
            "num_timesteps": np.array(self.num_timesteps),
            "chunk_events": np.array(self.chunk_events),
            "events_ingested": np.array(self.events_ingested),
            "num_runs": np.array(len(self._runs)),
            "checksum": np.array(
                _checkpoint_digest(
                    self.num_nodes,
                    self.num_timesteps,
                    self.chunk_events,
                    self.events_ingested,
                    self._runs,
                )
            ),
        }
        for i, (src, dst, t) in enumerate(self._runs):
            payload[f"run{i}_src"] = src
            payload[f"run{i}_dst"] = dst
            payload[f"run{i}_t"] = t
        final = os.fspath(path)
        tmp = final + ".tmp"
        try:
            with open(tmp, "wb") as fh:
                np.savez_compressed(fh, **payload)
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp, final)
        finally:
            if os.path.exists(tmp):
                os.remove(tmp)

    @classmethod
    def from_checkpoint(cls, path) -> "StreamingStoreBuilder":
        """Rebuild a builder from a :meth:`checkpoint` file.

        Raises :class:`~repro.reliability.CheckpointError` for
        anything unreadable — foreign files, unsupported versions,
        truncated archives, checksum mismatches — naming ``path`` and
        the failure mode.  ``FileNotFoundError`` passes through.
        """
        try:
            with np.load(path, allow_pickle=False) as data:
                if "__checkpoint__" not in data.files or (
                    str(data["__checkpoint__"][()]) != _CHECKPOINT_MAGIC
                ):
                    raise CheckpointError(
                        f"{path} is not an ingestion checkpoint "
                        "(no checkpoint marker)"
                    )
                version = int(data["version"])
                if version != _CHECKPOINT_VERSION:
                    raise CheckpointError(
                        f"{path}: unsupported checkpoint version {version} "
                        f"(this build reads version {_CHECKPOINT_VERSION})"
                    )
                builder = cls(
                    int(data["num_nodes"]),
                    int(data["num_timesteps"]),
                    chunk_events=int(data["chunk_events"]),
                )
                runs = [
                    (
                        data[f"run{i}_src"],
                        data[f"run{i}_dst"],
                        data[f"run{i}_t"],
                    )
                    for i in range(int(data["num_runs"]))
                ]
                stored = str(data["checksum"][()])
                events_ingested = int(data["events_ingested"])
        except FileNotFoundError:
            raise
        except CheckpointError:
            raise
        except Exception as exc:
            raise CheckpointError(
                f"{path}: corrupt or truncated checkpoint "
                f"({type(exc).__name__}: {exc})"
            ) from exc
        builder.events_ingested = events_ingested
        actual = _checkpoint_digest(
            builder.num_nodes,
            builder.num_timesteps,
            builder.chunk_events,
            builder.events_ingested,
            runs,
        )
        if actual != stored:
            raise CheckpointError(
                f"{path}: checksum mismatch (stored {stored[:12]}…, "
                f"computed {actual[:12]}…) — the checkpoint is corrupt"
            )
        builder._runs = runs
        return builder


def ingest_stream(
    events,
    num_nodes: int,
    num_timesteps: int,
    *,
    chunk_events: int = 65536,
    memory_budget_bytes: Optional[int] = None,
    attributes: Optional[np.ndarray] = None,
    checkpoint_path: Optional[str] = None,
    checkpoint_every_events: Optional[int] = None,
) -> TemporalEdgeStore:
    """Fold an integer-timestep event stream into a canonical store.

    The one-call front door to :class:`StreamingStoreBuilder`.
    ``events`` may be:

    * a single ``(src, dst, t)`` triple of parallel arrays — absorbed
      in chunk-sized slices;
    * an iterable of scalar ``(u, v, t)`` event triples;
    * an iterable of ``(src, dst, t)`` array batches (e.g. a generator
      yielding one batch per producer flush).

    Peak transient memory is one chunk (sized directly or via
    ``memory_budget_bytes``) plus the growing canonical runs — the
    unsorted stream is never resident at once.

    **Checkpoint/resume** (``docs/reliability.md``): with
    ``checkpoint_path`` set, the builder's state is persisted
    atomically every ``checkpoint_every_events`` ingested events
    (default: every ``chunk_events``).  If the process dies mid-stream,
    re-running the *same call over the same replayed stream* resumes
    from the checkpoint — the first ``events_ingested`` events are
    skipped and the final store is identical to the uninterrupted
    build (canonicalization is partition-invariant).  The checkpoint
    file is deleted once ``build`` succeeds.  The resume contract
    requires a deterministic, replayable producer; mismatched
    ``num_nodes``/``num_timesteps`` raise
    :class:`~repro.reliability.CheckpointError`.
    """
    skip = 0
    builder = None
    if checkpoint_path is not None and os.path.exists(checkpoint_path):
        builder = StreamingStoreBuilder.from_checkpoint(checkpoint_path)
        if (
            builder.num_nodes != num_nodes
            or builder.num_timesteps != num_timesteps
        ):
            raise CheckpointError(
                f"{checkpoint_path}: checkpoint universe "
                f"(N={builder.num_nodes}, T={builder.num_timesteps}) does "
                f"not match the requested ingestion "
                f"(N={num_nodes}, T={num_timesteps})"
            )
        skip = builder.events_ingested
    if builder is None:
        builder = StreamingStoreBuilder(
            num_nodes,
            num_timesteps,
            chunk_events=chunk_events,
            memory_budget_bytes=memory_budget_bytes,
        )
    every = (
        int(checkpoint_every_events)
        if checkpoint_every_events is not None
        else builder.chunk_events
    )
    if every < 1:
        raise ValueError("checkpoint_every_events must be >= 1")
    last_checkpoint = builder.events_ingested

    def maybe_checkpoint() -> None:
        nonlocal last_checkpoint
        if (
            checkpoint_path is not None
            and builder.events_ingested - last_checkpoint >= every
        ):
            builder.checkpoint(checkpoint_path)
            last_checkpoint = builder.events_ingested

    def absorb_batch(src, dst, t) -> None:
        """Feed one array batch, honoring the resume skip cursor."""
        nonlocal skip
        src = np.asarray(src, dtype=np.int64).reshape(-1)
        dst = np.asarray(dst, dtype=np.int64).reshape(-1)
        t = np.asarray(t, dtype=np.int64).reshape(-1)
        if skip >= src.size:
            skip -= src.size
            return
        if skip:
            src, dst, t = src[skip:], dst[skip:], t[skip:]
            skip = 0
        builder.extend(src, dst, t)
        maybe_checkpoint()

    if (
        isinstance(events, (tuple, list))
        and len(events) == 3
        and np.ndim(events[0]) >= 1
    ):
        # slice the triple so the checkpoint cadence holds inside it
        src = np.asarray(events[0]).reshape(-1)
        dst = np.asarray(events[1]).reshape(-1)
        t = np.asarray(events[2]).reshape(-1)
        for pos in range(0, max(src.size, 1), every):
            absorb_batch(
                src[pos:pos + every],
                dst[pos:pos + every],
                t[pos:pos + every],
            )
    else:
        for item in events:
            if len(item) != 3:
                raise ValueError(
                    "events must be (src, dst, t) triples or batches"
                )
            if np.ndim(item[0]) == 0:
                if skip:
                    skip -= 1
                    continue
                builder.add(int(item[0]), int(item[1]), int(item[2]))
                maybe_checkpoint()
            else:
                absorb_batch(*item)
    store = builder.build(attributes)
    if checkpoint_path is not None and os.path.exists(checkpoint_path):
        os.remove(checkpoint_path)
    return store


def snapshot_density_profile(graph: DynamicAttributedGraph) -> np.ndarray:
    """Per-snapshot edge counts, shape ``(T,)``.

    Used to sanity-check a discretization: uniform windows on a bursty
    stream produce a highly skewed profile, equal-count windows a flat
    one.
    """
    return np.array([s.num_edges for s in graph], dtype=float)
