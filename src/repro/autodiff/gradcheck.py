"""Finite-difference gradient checking, engine-agnostic.

:func:`gradcheck` pins analytic gradients (whatever ``backward``
produced — legacy closure engine or the flat tape) against central
finite differences of the loss.  It only relies on the shared
``backward()`` / ``.grad`` / ``.data`` surface, so the gradient-parity
suite runs the same checker over both engines.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence

import numpy as np

from repro.autodiff.tensor import Tensor, no_grad

__all__ = ["gradcheck"]


def _loss_value(fn: Callable) -> float:
    with no_grad():
        out = fn()
    return float(out.data)


def gradcheck(
    fn: Callable,
    params: Sequence[Tensor],
    eps: float = 1e-5,
    tol: float = 1e-4,
    max_entries: Optional[int] = None,
    seed: int = 0,
) -> bool:
    """Check ``backward`` gradients of ``fn()`` by central differences.

    Parameters
    ----------
    fn:
        Zero-argument callable returning a scalar loss (legacy Tensor
        or tape Variable).  It must be re-runnable: every call performs
        a fresh forward pass over the current ``params`` data.
    params:
        Leaf tensors (typically ``Module.parameters()``) whose
        gradients are checked.  Their ``.data`` is perturbed in place
        and restored.
    eps:
        Central-difference step.
    tol:
        Failure threshold on ``|analytic - numeric|`` scaled by
        ``max(1, |analytic|, |numeric|)``.
    max_entries:
        If set, check at most this many entries per parameter (chosen
        by a seeded RNG) — keeps the end-to-end VRDAG loss check fast.
    seed:
        Seed for the entry subsampling.

    Returns ``True`` on success; raises ``AssertionError`` naming the
    worst offending entry otherwise.
    """
    params = list(params)
    for p in params:
        p.grad = None
    out = fn()
    out.backward()
    analytic = [
        p.grad.copy() if p.grad is not None else np.zeros_like(p.data)
        for p in params
    ]
    for p in params:
        p.grad = None

    rng = np.random.default_rng(seed)
    failures = []
    for pi, (p, ana) in enumerate(zip(params, analytic)):
        flat = p.data.reshape(-1)
        ana_flat = ana.reshape(-1)
        indices = np.arange(flat.size)
        if max_entries is not None and flat.size > max_entries:
            indices = rng.choice(flat.size, size=max_entries, replace=False)
        for idx in indices:
            orig = flat[idx]
            flat[idx] = orig + eps
            f_plus = _loss_value(fn)
            flat[idx] = orig - eps
            f_minus = _loss_value(fn)
            flat[idx] = orig
            numeric = (f_plus - f_minus) / (2.0 * eps)
            scale = max(1.0, abs(numeric), abs(float(ana_flat[idx])))
            err = abs(float(ana_flat[idx]) - numeric) / scale
            if err > tol:
                failures.append((pi, int(idx), float(ana_flat[idx]), numeric, err))

    if failures:
        worst = max(failures, key=lambda f: f[-1])
        raise AssertionError(
            f"gradcheck failed on {len(failures)} entries; worst: param "
            f"{worst[0]} entry {worst[1]}: analytic={worst[2]:.6g} "
            f"numeric={worst[3]:.6g} rel_err={worst[4]:.3g} (tol={tol})"
        )
    return True
