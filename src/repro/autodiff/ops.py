"""Op registry for the flat-tape autodiff engine.

Every primitive the tape engine can record is an :class:`OpSpec`: a
forward kernel producing ``(output, residuals)`` plus a VJP kernel (and
optionally a JVP kernel), all plain vectorized NumPy functions.  The
:class:`~repro.autodiff.tape.Tape` stores only ``(op, input_ids,
impl_kwargs, residuals)`` records — no per-Tensor closures — so the
backward sweep is a flat loop over records calling these kernels.

Kernel contracts
----------------
``forward(*input_arrays, **impl_kwargs) -> (out_array, residuals)``
    ``residuals`` is whatever the VJP needs beyond the inputs (often the
    output itself, a mask, or ``None``).

``vjp(grad, inputs, residuals, **impl_kwargs) -> tuple``
    One cotangent per input, positionally; ``None`` marks a
    non-differentiable slot.  Shapes must match the inputs exactly
    (kernels reduce broadcasts with :func:`unbroadcast`).

``jvp(tangents, inputs, residuals, **impl_kwargs) -> out_tangent``
    Optional forward-mode rule; ``tangents`` aligns with ``inputs``
    (zeros filled in for constant slots).

The numerics intentionally mirror the legacy closure engine in
``tensor.py`` / ``functional.py`` expression-for-expression, so
gradient parity between the two engines is bit-exact on shared
primitives (see ``tests/autodiff/test_engine_parity.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

import numpy as np

from repro.autodiff.tensor import unbroadcast

__all__ = ["OpSpec", "register_op", "get_op", "registered_ops"]


@dataclass(frozen=True)
class OpSpec:
    """One registered primitive: name + forward/VJP(/JVP) kernels."""

    name: str
    forward: Callable
    vjp: Callable
    jvp: Optional[Callable] = None


_REGISTRY: Dict[str, OpSpec] = {}


def register_op(
    name: str,
    forward: Callable,
    vjp: Callable,
    jvp: Optional[Callable] = None,
    overwrite: bool = False,
) -> OpSpec:
    """Register a primitive under ``name`` and return its spec."""
    if name in _REGISTRY and not overwrite:
        raise ValueError(f"op {name!r} is already registered")
    spec = OpSpec(name=name, forward=forward, vjp=vjp, jvp=jvp)
    _REGISTRY[name] = spec
    return spec


def get_op(name: str) -> OpSpec:
    """Look up a registered primitive (KeyError lists known ops)."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown op {name!r}; registered: {sorted(_REGISTRY)}"
        ) from None


def registered_ops() -> Tuple[str, ...]:
    """Names of all registered primitives, sorted."""
    return tuple(sorted(_REGISTRY))


# ----------------------------------------------------------------------
# elementwise arithmetic
# ----------------------------------------------------------------------
register_op(
    "add",
    lambda a, b: (a + b, None),
    lambda g, inputs, res: (
        unbroadcast(g, inputs[0].shape),
        unbroadcast(g, inputs[1].shape),
    ),
    jvp=lambda tans, inputs, res: tans[0] + tans[1],
)

register_op(
    "sub",
    lambda a, b: (a - b, None),
    lambda g, inputs, res: (
        unbroadcast(g, inputs[0].shape),
        unbroadcast(-g, inputs[1].shape),
    ),
    jvp=lambda tans, inputs, res: tans[0] - tans[1],
)

register_op(
    "mul",
    lambda a, b: (a * b, None),
    lambda g, inputs, res: (
        unbroadcast(g * inputs[1], inputs[0].shape),
        unbroadcast(g * inputs[0], inputs[1].shape),
    ),
    jvp=lambda tans, inputs, res: tans[0] * inputs[1] + inputs[0] * tans[1],
)

register_op(
    "div",
    lambda a, b: (a / b, None),
    lambda g, inputs, res: (
        unbroadcast(g / inputs[1], inputs[0].shape),
        unbroadcast(-g * inputs[0] / (inputs[1] ** 2), inputs[1].shape),
    ),
    jvp=lambda tans, inputs, res: (
        tans[0] / inputs[1] - inputs[0] * tans[1] / (inputs[1] ** 2)
    ),
)

register_op(
    "neg",
    lambda a: (-a, None),
    lambda g, inputs, res: (-g,),
    jvp=lambda tans, inputs, res: -tans[0],
)


def _pow_forward(a, *, exponent):
    return a**exponent, None


def _pow_vjp(g, inputs, res, *, exponent):
    return (g * exponent * inputs[0] ** (exponent - 1),)


register_op("pow", _pow_forward, _pow_vjp)


# ----------------------------------------------------------------------
# matmul (ports the legacy 1-D promotion rules verbatim)
# ----------------------------------------------------------------------
def _matmul_forward(a, b):
    return a @ b, None


def _matmul_vjp(g, inputs, res):
    a, b = inputs
    a2 = a[None, :] if a.ndim == 1 else a
    b2 = b[:, None] if b.ndim == 1 else b
    gg = g
    if a.ndim == 1:
        gg = gg[None, ...]
    if b.ndim == 1:
        gg = gg[..., None]

    ga = gg @ np.swapaxes(b2, -1, -2)
    if a.ndim == 1:
        ga = ga.reshape(-1, a.shape[0]).sum(axis=0)
    ga = unbroadcast(ga, a.shape)

    gb = np.swapaxes(a2, -1, -2) @ gg
    if b.ndim == 1:
        gb = gb.reshape(-1, b.shape[0]) if gb.ndim > 2 else gb
        gb = np.squeeze(gb, axis=-1) if gb.shape[-1] == 1 else gb
        gb = gb.sum(axis=tuple(range(gb.ndim - 1))) if gb.ndim > 1 else gb
    gb = unbroadcast(gb, b.shape)
    return ga, gb


register_op(
    "matmul",
    _matmul_forward,
    _matmul_vjp,
    jvp=lambda tans, inputs, res: tans[0] @ inputs[1] + inputs[0] @ tans[1],
)


# ----------------------------------------------------------------------
# reductions
# ----------------------------------------------------------------------
def _sum_forward(a, *, axis=None, keepdims=False):
    return np.asarray(a.sum(axis=axis, keepdims=keepdims)), None


def _sum_vjp(g, inputs, res, *, axis=None, keepdims=False):
    (a,) = inputs
    if axis is None:
        return (np.broadcast_to(g, a.shape).copy(),)
    gg = g
    if not keepdims:
        gg = np.expand_dims(gg, axis=axis)
    return (np.broadcast_to(gg, a.shape).copy(),)


def _sum_jvp(tans, inputs, res, *, axis=None, keepdims=False):
    return np.asarray(tans[0].sum(axis=axis, keepdims=keepdims))


register_op("sum", _sum_forward, _sum_vjp, jvp=_sum_jvp)


def _max_forward(a, *, axis=None, keepdims=False):
    out = np.asarray(a.max(axis=axis, keepdims=keepdims))
    return out, out


def _max_vjp(g, inputs, out, *, axis=None, keepdims=False):
    (a,) = inputs
    gg, dd = g, out
    if axis is not None and not keepdims:
        gg = np.expand_dims(gg, axis=axis)
        dd = np.expand_dims(dd, axis=axis)
    mask = (a == dd).astype(np.float64)
    denom = mask.sum(axis=axis, keepdims=True) if axis is not None else mask.sum()
    return (gg * mask / denom,)


register_op("max", _max_forward, _max_vjp)


# ----------------------------------------------------------------------
# shape ops
# ----------------------------------------------------------------------
register_op(
    "reshape",
    lambda a, *, shape: (a.reshape(shape), None),
    lambda g, inputs, res, *, shape: (g.reshape(inputs[0].shape),),
    jvp=lambda tans, inputs, res, *, shape: tans[0].reshape(shape),
)

register_op(
    "transpose",
    lambda a, *, axes: (a.transpose(axes), None),
    lambda g, inputs, res, *, axes: (g.transpose(tuple(np.argsort(axes))),),
    jvp=lambda tans, inputs, res, *, axes: tans[0].transpose(axes),
)


def _getitem_forward(a, *, index):
    return np.asarray(a[index]), None


def _getitem_vjp(g, inputs, res, *, index):
    out = np.zeros_like(inputs[0])
    np.add.at(out, index, g)
    return (out,)


register_op("getitem", _getitem_forward, _getitem_vjp)

register_op(
    "expand_dims",
    lambda a, *, axis: (np.expand_dims(a, axis), None),
    lambda g, inputs, res, *, axis: (np.squeeze(g, axis=axis),),
    jvp=lambda tans, inputs, res, *, axis: np.expand_dims(tans[0], axis),
)

register_op(
    "squeeze",
    lambda a, *, axis: (np.squeeze(a, axis=axis), None),
    lambda g, inputs, res, *, axis: (np.expand_dims(g, axis=axis),),
    jvp=lambda tans, inputs, res, *, axis: np.squeeze(tans[0], axis=axis),
)


def _concat_forward(*arrays, axis=-1):
    return np.concatenate(arrays, axis=axis), None


def _concat_vjp(g, inputs, res, *, axis=-1):
    sizes = [a.shape[axis] for a in inputs]
    offsets = np.cumsum([0] + sizes)
    grads = []
    for i in range(len(inputs)):
        sl = [slice(None)] * g.ndim
        sl[axis] = slice(offsets[i], offsets[i + 1])
        grads.append(g[tuple(sl)])
    return tuple(grads)


register_op(
    "concat",
    _concat_forward,
    _concat_vjp,
    jvp=lambda tans, inputs, res, *, axis=-1: np.concatenate(tans, axis=axis),
)

register_op(
    "stack",
    lambda *arrays, axis=0: (np.stack(arrays, axis=axis), None),
    lambda g, inputs, res, *, axis=0: tuple(
        np.take(g, i, axis=axis) for i in range(len(inputs))
    ),
    jvp=lambda tans, inputs, res, *, axis=0: np.stack(tans, axis=axis),
)


def _where_forward(a, b, *, cond):
    return np.where(cond, a, b), None


def _where_vjp(g, inputs, res, *, cond):
    return (
        unbroadcast(g * cond, inputs[0].shape),
        unbroadcast(g * (~cond), inputs[1].shape),
    )


register_op("where", _where_forward, _where_vjp)


# ----------------------------------------------------------------------
# elementwise nonlinearities (formulas mirror functional.py verbatim)
# ----------------------------------------------------------------------
def _exp_forward(a):
    out = np.exp(a)
    return out, out


register_op(
    "exp",
    _exp_forward,
    lambda g, inputs, out: (g * out,),
    jvp=lambda tans, inputs, out: tans[0] * out,
)


def _log_forward(a, *, eps=0.0):
    arg = a + eps if eps else a
    return np.log(arg), arg


register_op(
    "log",
    _log_forward,
    lambda g, inputs, arg, *, eps=0.0: (g / arg,),
    jvp=lambda tans, inputs, arg, *, eps=0.0: tans[0] / arg,
)


def _sqrt_forward(a):
    out = np.sqrt(a)
    return out, out


register_op("sqrt", _sqrt_forward, lambda g, inputs, out: (g * 0.5 / out,))

register_op(
    "abs",
    lambda a: (np.abs(a), None),
    lambda g, inputs, res: (g * np.sign(inputs[0]),),
)


def stable_sigmoid(x: np.ndarray) -> np.ndarray:
    """The numerically stable piecewise sigmoid shared with functional.py."""
    return np.where(
        x >= 0,
        1.0 / (1.0 + np.exp(-np.clip(x, 0, None))),
        np.exp(np.clip(x, None, 0)) / (1.0 + np.exp(np.clip(x, None, 0))),
    )


def _sigmoid_forward(a):
    out = stable_sigmoid(a)
    return out, out


register_op(
    "sigmoid",
    _sigmoid_forward,
    lambda g, inputs, out: (g * out * (1.0 - out),),
    jvp=lambda tans, inputs, out: tans[0] * out * (1.0 - out),
)


def _tanh_forward(a):
    out = np.tanh(a)
    return out, out


register_op(
    "tanh",
    _tanh_forward,
    lambda g, inputs, out: (g * (1.0 - out**2),),
    jvp=lambda tans, inputs, out: tans[0] * (1.0 - out**2),
)


def _relu_forward(a):
    return np.maximum(a, 0.0), (a > 0).astype(np.float64)


register_op("relu", _relu_forward, lambda g, inputs, mask: (g * mask,))


def _leaky_relu_forward(a, *, negative_slope=0.2):
    mask = np.where(a > 0, 1.0, negative_slope)
    return a * mask, mask


register_op(
    "leaky_relu",
    _leaky_relu_forward,
    lambda g, inputs, mask, *, negative_slope=0.2: (g * mask,),
)


def _elu_forward(a, *, alpha=1.0):
    neg = alpha * (np.exp(np.clip(a, None, 0)) - 1.0)
    out = np.where(a > 0, a, neg)
    local = np.where(a > 0, 1.0, neg + alpha)
    return out, local


register_op(
    "elu",
    _elu_forward,
    lambda g, inputs, local, *, alpha=1.0: (g * local,),
)


def _softplus_forward(a):
    out = np.logaddexp(0.0, a)
    sig = 1.0 / (1.0 + np.exp(-np.clip(a, -60, 60)))
    return out, sig


register_op("softplus", _softplus_forward, lambda g, inputs, sig: (g * sig,))


def _sin_forward(a):
    return np.sin(a), None


register_op(
    "sin",
    _sin_forward,
    lambda g, inputs, res: (g * np.cos(inputs[0]),),
    jvp=lambda tans, inputs, res: tans[0] * np.cos(inputs[0]),
)


def _softmax_forward(a, *, axis=-1):
    shifted = a - a.max(axis=axis, keepdims=True)
    e = np.exp(shifted)
    out = e / e.sum(axis=axis, keepdims=True)
    return out, out


def _softmax_vjp(g, inputs, out, *, axis=-1):
    dot = (g * out).sum(axis=axis, keepdims=True)
    return (out * (g - dot),)


register_op("softmax", _softmax_forward, _softmax_vjp)


def _log_softmax_forward(a, *, axis=-1):
    shifted = a - a.max(axis=axis, keepdims=True)
    lse = np.log(np.exp(shifted).sum(axis=axis, keepdims=True))
    out = shifted - lse
    return out, np.exp(out)


def _log_softmax_vjp(g, inputs, soft, *, axis=-1):
    return (g - soft * g.sum(axis=axis, keepdims=True),)


register_op("log_softmax", _log_softmax_forward, _log_softmax_vjp)


def _logsumexp_forward(a, *, axis=-1, keepdims=False):
    m = a.max(axis=axis, keepdims=True)
    e = np.exp(a - m)
    s = e.sum(axis=axis, keepdims=True)
    out = np.log(s) + m
    if not keepdims:
        out = np.squeeze(out, axis=axis)
    return np.asarray(out), e / s


def _logsumexp_vjp(g, inputs, soft, *, axis=-1, keepdims=False):
    gg = g
    if not keepdims:
        gg = np.expand_dims(gg, axis=axis)
    return (gg * soft,)


register_op("logsumexp", _logsumexp_forward, _logsumexp_vjp)


def _clip_forward(a, *, lo, hi):
    return np.clip(a, lo, hi), None


def _clip_vjp(g, inputs, res, *, lo, hi):
    (a,) = inputs
    mask = ((a >= lo) & (a <= hi)).astype(np.float64)
    return (g * mask,)


register_op("clip", _clip_forward, _clip_vjp)


def _dropout_forward(a, *, p, rng):
    keep = 1.0 - p
    mask = (rng.random(a.shape) < keep).astype(np.float64) / keep
    return a * mask, mask


register_op(
    "dropout",
    _dropout_forward,
    lambda g, inputs, mask, *, p, rng: (g * mask,),
)
