"""Core :class:`Tensor` type and the reverse-mode tape.

The implementation follows the classic define-by-run design: each Tensor
produced by an operation keeps references to its parents and a list of
backward closures.  Gradients are accumulated into ``.grad`` (a plain
numpy array) during :meth:`Tensor.backward`.

Broadcasting is supported for elementwise ops; gradients flowing back
through a broadcast are reduced with :func:`unbroadcast` so shapes always
match the original operand.
"""

from __future__ import annotations

import contextlib
import threading
from typing import Callable, Iterable, Optional, Sequence, Tuple, Union

import numpy as np

Arrayish = Union["Tensor", np.ndarray, float, int]


class _GradMode(threading.local):
    """Per-thread tape-recording switch.

    Thread-local (like torch's grad mode) so that concurrent inference
    — e.g. ``GenerationService``'s thread executor running
    ``VRDAG.generate`` in parallel — cannot race the save/restore in
    :func:`no_grad` and leave recording disabled process-wide.  Each
    new thread starts with recording enabled.
    """

    enabled = True


_GRAD_MODE = _GradMode()


@contextlib.contextmanager
def no_grad():
    """Context manager disabling tape recording (inference mode)."""
    prev = _GRAD_MODE.enabled
    _GRAD_MODE.enabled = False
    try:
        yield
    finally:
        _GRAD_MODE.enabled = prev


def is_grad_enabled() -> bool:
    """Return whether operations are currently being recorded."""
    return _GRAD_MODE.enabled


def unbroadcast(grad: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Reduce ``grad`` so that it has ``shape``.

    Inverse of numpy broadcasting: sums over the axes that were added or
    stretched when an operand of ``shape`` was broadcast to ``grad.shape``.
    """
    if grad.shape == shape:
        return grad
    # Sum over leading axes that were added by broadcasting.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum over axes that were size-1 in the original shape.
    axes = tuple(i for i, s in enumerate(shape) if s == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


def _is_variable(value) -> bool:
    """Duck-typed check for a tape Variable (no import cycle with tape.py)."""
    return getattr(type(value), "_is_tape_variable", False)


def _as_array(value: Arrayish) -> np.ndarray:
    if isinstance(value, Tensor):
        return value.data
    return np.asarray(value, dtype=np.float64)


def as_tensor(value: Arrayish) -> "Tensor":
    """Coerce ``value`` to a Tensor (no copy if it already is one).

    Tape :class:`~repro.autodiff.tape.Variable` values are rejected:
    coercing one to a constant Tensor would silently detach it from its
    tape and drop gradients (use ``Variable.detach()`` to do so on
    purpose).
    """
    if isinstance(value, Tensor):
        return value
    if _is_variable(value):
        raise TypeError(
            "cannot coerce a tape Variable to a legacy Tensor; use "
            "Variable.detach() to drop gradients explicitly"
        )
    return Tensor(np.asarray(value, dtype=np.float64))


class Tensor:
    """A numpy array with reverse-mode gradient support.

    Parameters
    ----------
    data:
        Anything ``np.asarray`` accepts; stored as ``float64``.
    requires_grad:
        Whether gradients should be accumulated into :attr:`grad` for this
        tensor during :meth:`backward`.
    """

    __slots__ = ("data", "grad", "requires_grad", "_parents", "_backwards", "_op")
    __array_priority__ = 100  # so np.ndarray.__mul__ defers to Tensor

    def __init__(self, data: Arrayish, requires_grad: bool = False):
        self.data = np.asarray(data, dtype=np.float64)
        self.grad: Optional[np.ndarray] = None
        self.requires_grad = bool(requires_grad)
        self._parents: Tuple["Tensor", ...] = ()
        self._backwards: Tuple[Callable[[np.ndarray], np.ndarray], ...] = ()
        self._op: str = "leaf"

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def _from_op(
        cls,
        data: np.ndarray,
        parents: Sequence["Tensor"],
        backwards: Sequence[Callable[[np.ndarray], np.ndarray]],
        op: str,
    ) -> "Tensor":
        requires = _GRAD_MODE.enabled and any(p.requires_grad for p in parents)
        out = cls(data, requires_grad=requires)
        if requires:
            kept_parents = []
            kept_backwards = []
            for p, b in zip(parents, backwards):
                if p.requires_grad:
                    kept_parents.append(p)
                    kept_backwards.append(b)
            out._parents = tuple(kept_parents)
            out._backwards = tuple(kept_backwards)
            out._op = op
        return out

    # ------------------------------------------------------------------
    # shape / dtype conveniences
    # ------------------------------------------------------------------
    @property
    def shape(self) -> Tuple[int, ...]:
        """Shape of the underlying array."""
        return self.data.shape

    @property
    def ndim(self) -> int:
        """Number of array dimensions."""
        return self.data.ndim

    @property
    def size(self) -> int:
        """Total number of elements."""
        return self.data.size

    @property
    def T(self) -> "Tensor":
        """Transposed view (gradient transposes back)."""
        return self.transpose()

    def __len__(self) -> int:
        return len(self.data)

    def numpy(self) -> np.ndarray:
        """Return the underlying array (shared, not copied)."""
        return self.data

    def item(self) -> float:
        """The single scalar value (raises if ``size != 1``)."""
        return float(self.data)

    def detach(self) -> "Tensor":
        """Return a new leaf Tensor sharing data but cut from the tape."""
        return Tensor(self.data, requires_grad=False)

    def zero_grad(self) -> None:
        """Reset the accumulated gradient to ``None``."""
        self.grad = None

    def __repr__(self) -> str:
        return (
            f"Tensor(shape={self.shape}, op={self._op!r}, "
            f"requires_grad={self.requires_grad})"
        )

    # ------------------------------------------------------------------
    # backward
    # ------------------------------------------------------------------
    def backward(self, grad: Optional[np.ndarray] = None) -> None:
        """Backpropagate from this tensor through the recorded tape.

        Parameters
        ----------
        grad:
            Upstream gradient; defaults to ones (valid for scalar outputs).
        """
        if grad is None:
            if self.data.size != 1:
                raise ValueError(
                    "backward() without an explicit gradient requires a "
                    f"scalar output, got shape {self.shape}"
                )
            grad = np.ones_like(self.data)
        grad = np.asarray(grad, dtype=np.float64)
        if grad.shape != self.data.shape:
            raise ValueError(
                f"gradient shape {grad.shape} does not match tensor shape "
                f"{self.shape}"
            )

        topo: list[Tensor] = []
        visited: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                topo.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for p in node._parents:
                if id(p) not in visited:
                    stack.append((p, False))

        grads: dict[int, np.ndarray] = {id(self): grad}
        for node in reversed(topo):
            g = grads.pop(id(node), None)
            if g is None:
                continue
            if node.requires_grad and not node._parents:
                node.grad = g if node.grad is None else node.grad + g
            elif node.requires_grad and node._parents:
                # interior node that the user flagged: also store grad
                if node.grad is not None or node._op == "leaf":
                    node.grad = g if node.grad is None else node.grad + g
            for parent, back in zip(node._parents, node._backwards):
                pg = back(g)
                if pg is None:
                    continue
                key = id(parent)
                if key in grads:
                    grads[key] = grads[key] + pg
                else:
                    grads[key] = pg

    def retain_grad(self) -> "Tensor":
        """Mark a non-leaf tensor so backward() stores its gradient."""
        self.grad = np.zeros_like(self.data)
        return self

    # ------------------------------------------------------------------
    # arithmetic
    # ------------------------------------------------------------------
    def __add__(self, other: Arrayish) -> "Tensor":
        if _is_variable(other):
            return NotImplemented  # defer to Variable's reflected op
        other = as_tensor(other)
        data = self.data + other.data
        return Tensor._from_op(
            data,
            (self, other),
            (
                lambda g: unbroadcast(g, self.shape),
                lambda g: unbroadcast(g, other.shape),
            ),
            "add",
        )

    __radd__ = __add__

    def __sub__(self, other: Arrayish) -> "Tensor":
        if _is_variable(other):
            return NotImplemented
        other = as_tensor(other)
        data = self.data - other.data
        return Tensor._from_op(
            data,
            (self, other),
            (
                lambda g: unbroadcast(g, self.shape),
                lambda g: unbroadcast(-g, other.shape),
            ),
            "sub",
        )

    def __rsub__(self, other: Arrayish) -> "Tensor":
        return as_tensor(other) - self

    def __mul__(self, other: Arrayish) -> "Tensor":
        if _is_variable(other):
            return NotImplemented
        other = as_tensor(other)
        data = self.data * other.data
        return Tensor._from_op(
            data,
            (self, other),
            (
                lambda g: unbroadcast(g * other.data, self.shape),
                lambda g: unbroadcast(g * self.data, other.shape),
            ),
            "mul",
        )

    __rmul__ = __mul__

    def __truediv__(self, other: Arrayish) -> "Tensor":
        if _is_variable(other):
            return NotImplemented
        other = as_tensor(other)
        data = self.data / other.data
        return Tensor._from_op(
            data,
            (self, other),
            (
                lambda g: unbroadcast(g / other.data, self.shape),
                lambda g: unbroadcast(
                    -g * self.data / (other.data**2), other.shape
                ),
            ),
            "div",
        )

    def __rtruediv__(self, other: Arrayish) -> "Tensor":
        return as_tensor(other) / self

    def __neg__(self) -> "Tensor":
        return Tensor._from_op(-self.data, (self,), (lambda g: -g,), "neg")

    def __pow__(self, exponent: float) -> "Tensor":
        if isinstance(exponent, Tensor):
            raise TypeError("Tensor exponents are not supported; use exp/log")
        data = self.data**exponent
        return Tensor._from_op(
            data,
            (self,),
            (lambda g: g * exponent * self.data ** (exponent - 1),),
            "pow",
        )

    def __matmul__(self, other: Arrayish) -> "Tensor":
        if _is_variable(other):
            return NotImplemented
        other = as_tensor(other)
        data = self.data @ other.data
        # promote 1-D operands to 2-D for the backward pass, mirroring
        # numpy's matmul promotion rules
        a2 = self.data[None, :] if self.ndim == 1 else self.data
        b2 = other.data[:, None] if other.ndim == 1 else other.data

        def promote_grad(g: np.ndarray) -> np.ndarray:
            gg = g
            if self.ndim == 1:
                gg = gg[None, ...]
            if other.ndim == 1:
                gg = gg[..., None]
            return gg

        def back_self(g: np.ndarray) -> np.ndarray:
            gg = promote_grad(g) @ np.swapaxes(b2, -1, -2)
            if self.ndim == 1:
                gg = gg.reshape(-1, self.shape[0]).sum(axis=0)
            return unbroadcast(gg, self.shape)

        def back_other(g: np.ndarray) -> np.ndarray:
            gg = np.swapaxes(a2, -1, -2) @ promote_grad(g)
            if other.ndim == 1:
                gg = gg.reshape(-1, other.shape[0]) if gg.ndim > 2 else gg
                gg = np.squeeze(gg, axis=-1) if gg.shape[-1] == 1 else gg
                gg = gg.sum(axis=tuple(range(gg.ndim - 1))) if gg.ndim > 1 else gg
            return unbroadcast(gg, other.shape)

        return Tensor._from_op(data, (self, other), (back_self, back_other), "matmul")

    # ------------------------------------------------------------------
    # comparisons (non-differentiable, return numpy bool arrays)
    # ------------------------------------------------------------------
    def __gt__(self, other: Arrayish) -> np.ndarray:
        return self.data > _as_array(other)

    def __lt__(self, other: Arrayish) -> np.ndarray:
        return self.data < _as_array(other)

    def __ge__(self, other: Arrayish) -> np.ndarray:
        return self.data >= _as_array(other)

    def __le__(self, other: Arrayish) -> np.ndarray:
        return self.data <= _as_array(other)

    # ------------------------------------------------------------------
    # reductions
    # ------------------------------------------------------------------
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        """Sum over ``axis`` (or all elements)."""
        data = self.data.sum(axis=axis, keepdims=keepdims)

        def back(g: np.ndarray) -> np.ndarray:
            if axis is None:
                return np.broadcast_to(g, self.shape).copy()
            gg = g
            if not keepdims:
                gg = np.expand_dims(gg, axis=axis)
            return np.broadcast_to(gg, self.shape).copy()

        return Tensor._from_op(np.asarray(data), (self,), (back,), "sum")

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        """Mean over ``axis`` (or all elements)."""
        if axis is None:
            count = self.data.size
        else:
            axes = axis if isinstance(axis, tuple) else (axis,)
            count = int(np.prod([self.shape[a] for a in axes]))
        return self.sum(axis=axis, keepdims=keepdims) / float(count)

    def max(self, axis=None, keepdims: bool = False) -> "Tensor":
        """Maximum over ``axis``; gradient flows to the argmax entries."""
        data = self.data.max(axis=axis, keepdims=keepdims)

        def back(g: np.ndarray) -> np.ndarray:
            gg = g
            dd = data
            if axis is not None and not keepdims:
                gg = np.expand_dims(gg, axis=axis)
                dd = np.expand_dims(dd, axis=axis)
            mask = (self.data == dd).astype(np.float64)
            # split gradient between ties to keep it a valid subgradient
            denom = mask.sum(axis=axis, keepdims=True) if axis is not None else mask.sum()
            return gg * mask / denom

        return Tensor._from_op(np.asarray(data), (self,), (back,), "max")

    # ------------------------------------------------------------------
    # shape ops
    # ------------------------------------------------------------------
    def reshape(self, *shape) -> "Tensor":
        """Reshaped view; gradient reshapes back."""
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        data = self.data.reshape(shape)
        return Tensor._from_op(
            data, (self,), (lambda g: g.reshape(self.shape),), "reshape"
        )

    def transpose(self, *axes) -> "Tensor":
        """Axis permutation; gradient applies the inverse permutation."""
        if not axes:
            axes_ = tuple(reversed(range(self.ndim)))
        elif len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes_ = tuple(axes[0])
        else:
            axes_ = tuple(axes)
        data = self.data.transpose(axes_)
        inv = tuple(np.argsort(axes_))
        return Tensor._from_op(
            data, (self,), (lambda g: g.transpose(inv),), "transpose"
        )

    def __getitem__(self, index) -> "Tensor":
        data = self.data[index]

        def back(g: np.ndarray) -> np.ndarray:
            out = np.zeros_like(self.data)
            np.add.at(out, index, g)
            return out

        return Tensor._from_op(np.asarray(data), (self,), (back,), "getitem")

    def expand_dims(self, axis: int) -> "Tensor":
        """Insert a size-1 axis at ``axis``."""
        data = np.expand_dims(self.data, axis)
        return Tensor._from_op(
            data, (self,), (lambda g: np.squeeze(g, axis=axis),), "expand_dims"
        )

    def squeeze(self, axis: int) -> "Tensor":
        """Drop a size-1 axis at ``axis``."""
        data = np.squeeze(self.data, axis=axis)
        return Tensor._from_op(
            data, (self,), (lambda g: np.expand_dims(g, axis=axis),), "squeeze"
        )

    # convenience wrappers implemented in functional.py are attached below
