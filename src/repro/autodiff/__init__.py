"""Reverse-mode automatic differentiation on numpy arrays.

This subpackage is the substrate that replaces PyTorch for the VRDAG
reproduction.  It provides a :class:`Tensor` wrapping a ``numpy.ndarray``
together with a dynamic tape: every differentiable operation records the
local vector-Jacobian products needed to backpropagate, and
:meth:`Tensor.backward` walks the tape in reverse topological order.

Example
-------
>>> import numpy as np
>>> from repro.autodiff import Tensor
>>> x = Tensor(np.ones((2, 2)), requires_grad=True)
>>> y = (x * 3.0 + 1.0).sum()
>>> y.backward()
>>> x.grad
array([[3., 3.],
       [3., 3.]])
"""

from repro.autodiff.tensor import Tensor, no_grad, is_grad_enabled
from repro.autodiff import functional

__all__ = ["Tensor", "no_grad", "is_grad_enabled", "functional"]
