"""Reverse-mode automatic differentiation on numpy arrays.

This subpackage is the substrate that replaces PyTorch for the VRDAG
reproduction.  Two engines share one functional surface:

* the **flat-tape engine** (:class:`Tape` / :class:`Variable`,
  ``ops.py`` / ``fused.py``) — the training fast path.  Ops append
  flat ``(op, input_ids, impl_kwargs)`` records to the active tape;
  ``backward`` is a single reverse loop calling registered VJP
  kernels, with whole encoder/decoder motifs fused into single
  records;
* the **legacy closure engine** (:class:`Tensor`, ``tensor.py``) —
  kept alive as the reference twin.  Every op builds per-Tensor
  backward closures; the gradient-parity suite pins the tape engine
  against it (and both against finite differences via
  :func:`gradcheck`).

Modules in :mod:`repro.nn` route onto whichever engine is active:
inside a ``with Tape():`` block (with grads enabled) they record tape
ops; otherwise they build the closure graph.  Both grad mode and the
active-tape stack are thread-local.

Example
-------
>>> import numpy as np
>>> from repro.autodiff import Tensor, Tape
>>> x = Tensor(np.ones((2, 2)), requires_grad=True)
>>> with Tape() as tape:
...     y = (tape.lift(x) * 3.0 + 1.0).sum()
...     y.backward()
>>> x.grad
array([[3., 3.],
       [3., 3.]])
"""

from repro.autodiff.tensor import Tensor, no_grad, is_grad_enabled
from repro.autodiff.tape import Tape, Variable, active_tape, tape_for
from repro.autodiff.gradcheck import gradcheck
from repro.autodiff import fused  # noqa: F401  (registers the fused ops)
from repro.autodiff import functional

__all__ = [
    "Tensor",
    "no_grad",
    "is_grad_enabled",
    "Tape",
    "Variable",
    "active_tape",
    "tape_for",
    "gradcheck",
    "functional",
]
