"""Flat-tape reverse-mode engine: ``Tape``, ``Record`` and ``Variable``.

Instead of the legacy per-Tensor closure graph (``tensor.py``), this
engine appends one flat :class:`Record` — ``(op, input_ids, out_id,
impl_kwargs, residuals)`` — per primitive application to a
:class:`Tape`.  Because records are appended in execution order the
tape IS a topological order, so :meth:`Tape.backward` is a single
reverse loop over records calling each op's registered VJP kernel
(see :mod:`repro.autodiff.ops`) — no graph walk, no per-node closure
allocation, and fused composite ops (:mod:`repro.autodiff.fused`)
collapse whole encoder/decoder motifs into one record each.

Usage::

    with Tape() as tape:
        loss = model.sequence_loss(graph)   # modules route onto the tape
        loss.backward()                     # grads land in Parameter.grad

The active-tape stack is thread-local, exactly like the legacy grad
mode: concurrent generation threads never observe a training thread's
tape.  Recording additionally respects :func:`no_grad`, so generation
stays tape-free even inside a ``with Tape():`` block.

Leaf lifting rules (``Tape.lift``):

* a legacy **leaf** ``Tensor`` (e.g. ``Parameter``) becomes a tape leaf
  remembering its source — ``backward`` accumulates into the source's
  ``.grad`` so optimizers work unchanged;
* plain arrays / scalars become constants;
* a legacy **interior** node (``requires_grad`` with parents) is
  rejected with ``RuntimeError`` — silently detaching it would drop
  gradients for everything upstream of the engine boundary.
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.autodiff.ops import OpSpec, get_op
from repro.autodiff.tensor import Tensor, is_grad_enabled
from repro.profiling import profiler

__all__ = ["Record", "Tape", "Variable", "active_tape", "tape_for"]


class _ActiveTapes(threading.local):
    """Per-thread stack of entered tapes (innermost last)."""

    def __init__(self):
        self.stack: List["Tape"] = []


_ACTIVE = _ActiveTapes()


def active_tape() -> Optional["Tape"]:
    """The innermost entered :class:`Tape` on this thread, if any."""
    return _ACTIVE.stack[-1] if _ACTIVE.stack else None


def tape_for(*args: Any) -> Optional["Tape"]:
    """Routing rule shared by every dual-engine call site.

    Returns the tape an operation should record onto: the tape of the
    first :class:`Variable` argument if there is one, else the active
    tape when grad recording is enabled, else ``None`` (legacy path).
    """
    for a in args:
        if isinstance(a, Variable):
            return a.tape
    tape = active_tape()
    if tape is not None and is_grad_enabled():
        return tape
    return None


class Record:
    """One tape entry: op spec + flat value ids + kwargs + residuals."""

    __slots__ = ("spec", "input_ids", "out_id", "kwargs", "residuals")

    def __init__(
        self,
        spec: OpSpec,
        input_ids: Tuple[int, ...],
        out_id: int,
        kwargs: Dict[str, Any],
        residuals: Any,
    ):
        self.spec = spec
        self.input_ids = input_ids
        self.out_id = out_id
        self.kwargs = kwargs
        self.residuals = residuals

    def __repr__(self) -> str:
        return (
            f"Record(op={self.spec.name!r}, inputs={self.input_ids}, "
            f"out={self.out_id})"
        )


class Tape:
    """A flat list of :class:`Record` plus the value slots they address.

    Also a context manager: entering pushes the tape onto the
    thread-local active stack so module ``forward``s route onto it.
    """

    def __init__(self):
        self._records: List[Record] = []
        self._values: List[np.ndarray] = []
        self._requires: List[bool] = []
        #: value id -> legacy leaf Tensor whose ``.grad`` receives grads
        self._sources: Dict[int, Tensor] = {}
        #: id(Tensor) -> value id, so repeated lifts of the same
        #: Parameter within one tape reuse a single leaf slot
        self._lifted: Dict[int, int] = {}
        self._lifted_keep: List[Tensor] = []  # keep ids stable
        self._grads: Optional[List[Optional[np.ndarray]]] = None

    # ------------------------------------------------------------------
    # context manager / introspection
    # ------------------------------------------------------------------
    def __enter__(self) -> "Tape":
        _ACTIVE.stack.append(self)
        return self

    def __exit__(self, *exc) -> None:
        popped = _ACTIVE.stack.pop()
        assert popped is self, "tape stack corrupted"

    @property
    def records(self) -> Tuple[Record, ...]:
        """The recorded ops, in execution (= topological) order."""
        return tuple(self._records)

    def __len__(self) -> int:
        return len(self._records)

    def __repr__(self) -> str:
        return f"Tape(records={len(self._records)}, values={len(self._values)})"

    # ------------------------------------------------------------------
    # value construction
    # ------------------------------------------------------------------
    def _new_value(self, data: np.ndarray, requires: bool) -> int:
        vid = len(self._values)
        self._values.append(data)
        self._requires.append(requires)
        return vid

    def leaf(
        self,
        data: Any,
        requires_grad: bool = False,
        source: Optional[Tensor] = None,
    ) -> "Variable":
        """Create a leaf value (optionally tied to a legacy Tensor)."""
        arr = np.asarray(data, dtype=np.float64)
        vid = self._new_value(arr, bool(requires_grad))
        if source is not None and requires_grad:
            self._sources[vid] = source
        return Variable(self, vid, arr)

    def lift(self, value: Any) -> "Variable":
        """Coerce ``value`` onto this tape (see module docstring rules)."""
        if isinstance(value, Variable):
            if value.tape is not self:
                raise RuntimeError(
                    "cannot mix Variables from different tapes in one op"
                )
            return value
        if isinstance(value, Tensor):
            vid = self._lifted.get(id(value))
            if vid is not None:
                return Variable(self, vid, self._values[vid])
            if value.requires_grad and value._parents:
                raise RuntimeError(
                    "cannot lift a legacy interior autodiff node onto a "
                    "tape: its upstream closure graph would be silently "
                    "detached; detach() it explicitly or build it on the "
                    "tape instead"
                )
            var = self.leaf(
                value.data,
                requires_grad=value.requires_grad,
                source=value if value.requires_grad else None,
            )
            self._lifted[id(value)] = var.vid
            self._lifted_keep.append(value)
            return var
        return self.leaf(np.asarray(value, dtype=np.float64))

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------
    def apply(self, name: str, inputs: Sequence[Any], **kwargs: Any) -> "Variable":
        """Run op ``name`` on ``inputs``, recording it when grads are on."""
        spec = get_op(name)
        vars_ = [self.lift(x) for x in inputs]
        datas = tuple(v.data for v in vars_)
        if profiler.enabled:
            with profiler.timer(f"tape.op.{name}"):
                out, residuals = spec.forward(*datas, **kwargs)
        else:
            out, residuals = spec.forward(*datas, **kwargs)
        out = np.asarray(out, dtype=np.float64)
        requires = is_grad_enabled() and any(
            self._requires[v.vid] for v in vars_
        )
        out_id = self._new_value(out, requires)
        if requires:
            self._records.append(
                Record(spec, tuple(v.vid for v in vars_), out_id, kwargs, residuals)
            )
        return Variable(self, out_id, out)

    # ------------------------------------------------------------------
    # reverse sweep
    # ------------------------------------------------------------------
    def _pullback(
        self, out_id: int, seed: np.ndarray
    ) -> List[Optional[np.ndarray]]:
        """One reverse pass over the records; returns grads per value id."""
        grads: List[Optional[np.ndarray]] = [None] * len(self._values)
        grads[out_id] = seed
        requires = self._requires
        prof = profiler.enabled
        for rec in reversed(self._records):
            g = grads[rec.out_id]
            if g is None:
                continue
            inputs = tuple(self._values[i] for i in rec.input_ids)
            if prof:
                with profiler.timer(f"tape.vjp.{rec.spec.name}"):
                    pgs = rec.spec.vjp(g, inputs, rec.residuals, **rec.kwargs)
            else:
                pgs = rec.spec.vjp(g, inputs, rec.residuals, **rec.kwargs)
            for vid, pg in zip(rec.input_ids, pgs):
                if pg is None or not requires[vid]:
                    continue
                if grads[vid] is None:
                    grads[vid] = pg
                else:
                    grads[vid] = grads[vid] + pg
        return grads

    @staticmethod
    def _seed_for(out: "Variable", grad: Optional[np.ndarray]) -> np.ndarray:
        if grad is None:
            if out.data.size != 1:
                raise ValueError(
                    "backward() without an explicit gradient requires a "
                    f"scalar output, got shape {out.shape}"
                )
            return np.ones_like(out.data)
        grad = np.asarray(grad, dtype=np.float64)
        if grad.shape != out.data.shape:
            raise ValueError(
                f"gradient shape {grad.shape} does not match output shape "
                f"{out.shape}"
            )
        return grad

    def backward(self, out: "Variable", grad: Optional[np.ndarray] = None) -> None:
        """Backpropagate from ``out``; accumulate into source Tensors."""
        grads = self._pullback(out.vid, self._seed_for(out, grad))
        self._grads = grads
        for vid, src in self._sources.items():
            g = grads[vid]
            if g is None:
                continue
            src.grad = g if src.grad is None else src.grad + g

    def grad(self, var: Union["Variable", Tensor]) -> Optional[np.ndarray]:
        """Gradient of the last :meth:`backward` w.r.t. ``var``."""
        if self._grads is None:
            return None
        return self._grads[self._value_id(var)]

    # ------------------------------------------------------------------
    # derived linear maps (abopt-style get_vjp / get_jvp)
    # ------------------------------------------------------------------
    def _value_id(self, var: Union["Variable", Tensor]) -> int:
        if isinstance(var, Variable):
            if var.tape is not self:
                raise RuntimeError("Variable belongs to a different tape")
            return var.vid
        vid = self._lifted.get(id(var))
        if vid is None:
            raise KeyError("Tensor was never lifted onto this tape")
        return vid

    def get_vjp(
        self,
        output: "Variable",
        wrt: Sequence[Union["Variable", Tensor]],
    ) -> Callable[[Optional[np.ndarray]], List[np.ndarray]]:
        """Vector-Jacobian product of ``output`` w.r.t. ``wrt`` leaves.

        The returned callable maps an output cotangent (default: ones,
        valid for scalar outputs) to one gradient array per ``wrt``
        entry, zeros where no path exists.
        """
        out_id = output.vid
        wrt_ids = [self._value_id(w) for w in wrt]

        def vjp_fn(seed: Optional[np.ndarray] = None) -> List[np.ndarray]:
            grads = self._pullback(out_id, self._seed_for(output, seed))
            return [
                grads[i] if grads[i] is not None else np.zeros_like(self._values[i])
                for i in wrt_ids
            ]

        return vjp_fn

    def get_jvp(
        self,
        output: "Variable",
        wrt: Sequence[Union["Variable", Tensor]],
    ) -> Callable[[Sequence[np.ndarray]], np.ndarray]:
        """Jacobian-vector product: push ``wrt`` tangents forward.

        Only ops that declare a JVP kernel are supported; hitting one
        without raises ``NotImplementedError`` naming the op.
        """
        out_id = output.vid
        wrt_ids = [self._value_id(w) for w in wrt]

        def jvp_fn(tangents: Sequence[np.ndarray]) -> np.ndarray:
            if len(tangents) != len(wrt_ids):
                raise ValueError(
                    f"expected {len(wrt_ids)} tangents, got {len(tangents)}"
                )
            tan: List[Optional[np.ndarray]] = [None] * len(self._values)
            for vid, t in zip(wrt_ids, tangents):
                t = np.asarray(t, dtype=np.float64)
                if t.shape != self._values[vid].shape:
                    raise ValueError(
                        f"tangent shape {t.shape} does not match value "
                        f"shape {self._values[vid].shape}"
                    )
                tan[vid] = t
            for rec in self._records:
                in_tans = [tan[i] for i in rec.input_ids]
                if all(t is None for t in in_tans):
                    continue
                if rec.spec.jvp is None:
                    raise NotImplementedError(
                        f"op {rec.spec.name!r} has no JVP kernel"
                    )
                inputs = tuple(self._values[i] for i in rec.input_ids)
                filled = [
                    np.zeros_like(inputs[k]) if t is None else t
                    for k, t in enumerate(in_tans)
                ]
                tan[rec.out_id] = rec.spec.jvp(
                    filled, inputs, rec.residuals, **rec.kwargs
                )
            t = tan[out_id]
            return t if t is not None else np.zeros_like(self._values[out_id])

        return jvp_fn


class Variable:
    """A value recorded on a :class:`Tape` — the tape engine's Tensor.

    Mirrors the legacy :class:`~repro.autodiff.tensor.Tensor` surface
    (arithmetic, reductions, shape ops, ``backward``) but holds no
    closures: just ``(tape, value id, array)``.  Mixed expressions with
    legacy Tensors work because Tensor's binary dunders return
    ``NotImplemented`` for Variables, deferring to the reflected
    methods here, which lift the Tensor onto the tape.
    """

    __slots__ = ("tape", "vid", "data")
    __array_priority__ = 200  # outrank both np.ndarray and Tensor
    _is_tape_variable = True

    def __init__(self, tape: Tape, vid: int, data: np.ndarray):
        self.tape = tape
        self.vid = vid
        self.data = data

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def shape(self) -> Tuple[int, ...]:
        """Shape of the underlying array."""
        return self.data.shape

    @property
    def ndim(self) -> int:
        """Number of array dimensions."""
        return self.data.ndim

    @property
    def size(self) -> int:
        """Total number of elements."""
        return self.data.size

    @property
    def requires_grad(self) -> bool:
        """Whether any recorded path reaches a grad-requiring leaf."""
        return self.tape._requires[self.vid]

    @property
    def grad(self) -> Optional[np.ndarray]:
        """Gradient from the tape's last backward pass, if any."""
        return self.tape.grad(self)

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        return (
            f"Variable(shape={self.shape}, vid={self.vid}, "
            f"requires_grad={self.requires_grad})"
        )

    def numpy(self) -> np.ndarray:
        """Return the underlying array (shared, not copied)."""
        return self.data

    def __array__(self, dtype=None):
        return np.asarray(self.data, dtype=dtype)

    def item(self) -> float:
        """The single scalar value (raises if ``size != 1``)."""
        return float(self.data)

    def detach(self) -> Tensor:
        """Cut from the tape: a constant legacy Tensor sharing data."""
        return Tensor(self.data, requires_grad=False)

    def backward(self, grad: Optional[np.ndarray] = None) -> None:
        """Backpropagate through this Variable's tape."""
        self.tape.backward(self, grad)

    # ------------------------------------------------------------------
    # arithmetic (records onto the tape)
    # ------------------------------------------------------------------
    def _apply(self, name: str, inputs: Sequence[Any], **kwargs: Any) -> "Variable":
        return self.tape.apply(name, inputs, **kwargs)

    def __add__(self, other: Any) -> "Variable":
        return self._apply("add", (self, other))

    def __radd__(self, other: Any) -> "Variable":
        return self._apply("add", (other, self))

    def __sub__(self, other: Any) -> "Variable":
        return self._apply("sub", (self, other))

    def __rsub__(self, other: Any) -> "Variable":
        return self._apply("sub", (other, self))

    def __mul__(self, other: Any) -> "Variable":
        return self._apply("mul", (self, other))

    def __rmul__(self, other: Any) -> "Variable":
        return self._apply("mul", (other, self))

    def __truediv__(self, other: Any) -> "Variable":
        return self._apply("div", (self, other))

    def __rtruediv__(self, other: Any) -> "Variable":
        return self._apply("div", (other, self))

    def __neg__(self) -> "Variable":
        return self._apply("neg", (self,))

    def __pow__(self, exponent: float) -> "Variable":
        if isinstance(exponent, (Variable, Tensor)):
            raise TypeError("Variable exponents are not supported; use exp/log")
        return self._apply("pow", (self,), exponent=exponent)

    def __matmul__(self, other: Any) -> "Variable":
        return self._apply("matmul", (self, other))

    def __rmatmul__(self, other: Any) -> "Variable":
        return self._apply("matmul", (other, self))

    def __getitem__(self, index: Any) -> "Variable":
        return self._apply("getitem", (self,), index=index)

    # ------------------------------------------------------------------
    # comparisons (non-differentiable, numpy results — like Tensor)
    # ------------------------------------------------------------------
    def __gt__(self, other: Any) -> np.ndarray:
        return self.data > np.asarray(other)

    def __lt__(self, other: Any) -> np.ndarray:
        return self.data < np.asarray(other)

    def __ge__(self, other: Any) -> np.ndarray:
        return self.data >= np.asarray(other)

    def __le__(self, other: Any) -> np.ndarray:
        return self.data <= np.asarray(other)

    # ------------------------------------------------------------------
    # reductions / shape ops
    # ------------------------------------------------------------------
    def sum(self, axis=None, keepdims: bool = False) -> "Variable":
        """Sum over ``axis`` (or all elements)."""
        return self._apply("sum", (self,), axis=axis, keepdims=keepdims)

    def mean(self, axis=None, keepdims: bool = False) -> "Variable":
        """Mean over ``axis`` (same sum/div composition as the legacy engine)."""
        if axis is None:
            count = self.data.size
        else:
            axes = axis if isinstance(axis, tuple) else (axis,)
            count = int(np.prod([self.shape[a] for a in axes]))
        return self.sum(axis=axis, keepdims=keepdims) / float(count)

    def max(self, axis=None, keepdims: bool = False) -> "Variable":
        """Maximum over ``axis``; gradient splits between ties."""
        return self._apply("max", (self,), axis=axis, keepdims=keepdims)

    def reshape(self, *shape) -> "Variable":
        """Reshaped view; gradient reshapes back."""
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        return self._apply("reshape", (self,), shape=shape)

    def transpose(self, *axes) -> "Variable":
        """Axis permutation; gradient applies the inverse permutation."""
        if not axes:
            axes_ = tuple(reversed(range(self.ndim)))
        elif len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes_ = tuple(axes[0])
        else:
            axes_ = tuple(axes)
        return self._apply("transpose", (self,), axes=axes_)

    @property
    def T(self) -> "Variable":
        """Transposed view (gradient transposes back)."""
        return self.transpose()

    def expand_dims(self, axis: int) -> "Variable":
        """Insert a size-1 axis at ``axis``."""
        return self._apply("expand_dims", (self,), axis=axis)

    def squeeze(self, axis: int) -> "Variable":
        """Drop a size-1 axis at ``axis``."""
        return self._apply("squeeze", (self,), axis=axis)

    # convenience wrappers (exp/log/sigmoid/...) are attached by
    # functional.py's _attach(), mirroring the legacy Tensor
