"""Fused composite ops: one tape record per encoder/decoder motif.

The VRDAG training step repeats a handful of motifs thousands of times
per epoch — affine+activation layers, the GRU cell update, GAT
attention, and the MixBernoulli pairwise heads.  On the legacy closure
engine each motif costs 5–40 small Tensor allocations plus as many
backward closures; here each is a single :class:`~repro.autodiff.ops.OpSpec`
with a hand-written VJP, so both sweeps are a few large NumPy calls.

Registered ops
--------------
``linear_act``
    ``act(x @ W [+ b])`` — every Linear / MLP layer.
``gru_cell``
    Full GRU step (r/z/n gates + convex combination), 11 inputs.
``gat_attention``
    Masked attention scores → softmax → renormalize → aggregate → ELU
    (everything in :class:`repro.nn.attention.GATLayer` after the input
    projection).
``pairwise_mlp2``
    ``mlp(s_i - s_j)`` for all pairs through a 2-layer MLP, using the
    first-layer projection trick ``(s_i - s_j) @ W1 = P_i - P_j`` (same
    reassociation as the no-grad decode kernels in
    ``core/generator.py``), so the dominant matmul is O(N·d·h) instead
    of O(N²·d·h).
``mixbern_row_loglik``
    σ → clip → Bernoulli log-likelihood → diagonal mask → pool over
    destinations, producing the per-row per-component ``(N, K)``
    log-likelihood of Eq. 11 in one record.

Gradient formulas mirror what the legacy engine's composition of
primitives computes; ``pairwise_mlp2`` reassociates the first layer, so
its parity with the closure engine is a few-ulp affair rather than
bit-exact (the parity suite pins both engines against finite
differences too).
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.autodiff.ops import register_op, stable_sigmoid
from repro.autodiff.tensor import unbroadcast

__all__ = ["FUSED_ACTIVATIONS"]

#: activations the fused kernels support (same names as nn.linear)
FUSED_ACTIVATIONS = (
    "identity",
    "relu",
    "leaky_relu",
    "tanh",
    "sigmoid",
    "elu",
    "softplus",
)


def _act_with_local(
    name: str, pre: np.ndarray, slope: float
) -> Tuple[np.ndarray, Optional[np.ndarray]]:
    """Activation value + local derivative (``None`` marks identity)."""
    if name == "identity":
        return pre, None
    if name == "relu":
        return np.maximum(pre, 0.0), (pre > 0).astype(np.float64)
    if name == "leaky_relu":
        mask = np.where(pre > 0, 1.0, slope)
        return pre * mask, mask
    if name == "tanh":
        out = np.tanh(pre)
        return out, 1.0 - out**2
    if name == "sigmoid":
        out = stable_sigmoid(pre)
        return out, out * (1.0 - out)
    if name == "elu":
        neg = np.exp(np.clip(pre, None, 0)) - 1.0
        out = np.where(pre > 0, pre, neg)
        return out, np.where(pre > 0, 1.0, neg + 1.0)
    if name == "softplus":
        out = np.logaddexp(0.0, pre)
        return out, 1.0 / (1.0 + np.exp(-np.clip(pre, -60, 60)))
    raise KeyError(
        f"unsupported fused activation {name!r}; known: {FUSED_ACTIVATIONS}"
    )


# ----------------------------------------------------------------------
# linear_act: act(x @ W [+ b])
# ----------------------------------------------------------------------
def _linear_act_forward(x, w, b=None, *, activation="identity", negative_slope=0.2):
    pre = x @ w
    if b is not None:
        pre = pre + b
    out, local = _act_with_local(activation, pre, negative_slope)
    return out, local


def _linear_act_vjp(g, inputs, local, *, activation="identity", negative_slope=0.2):
    x, w = inputs[0], inputs[1]
    dpre = g if local is None else g * local
    dx = dpre @ np.swapaxes(w, -1, -2)
    dw = np.swapaxes(x, -1, -2) @ dpre
    if len(inputs) == 2:
        return dx, dw
    db = unbroadcast(dpre, inputs[2].shape)
    return dx, dw, db


def _linear_act_jvp(tans, inputs, local, *, activation="identity", negative_slope=0.2):
    x, w = inputs[0], inputs[1]
    dpre = tans[0] @ w + x @ tans[1]
    if len(inputs) == 3:
        dpre = dpre + tans[2]
    return dpre if local is None else dpre * local


register_op("linear_act", _linear_act_forward, _linear_act_vjp, jvp=_linear_act_jvp)


# ----------------------------------------------------------------------
# gru_cell: full GRU step (gru.py forward, one record)
# ----------------------------------------------------------------------
def _gru_cell_forward(x, h, w_xr, w_hr, b_r, w_xz, w_hz, b_z, w_xn, w_hn, b_n):
    r = stable_sigmoid(x @ w_xr + h @ w_hr + b_r)
    z = stable_sigmoid(x @ w_xz + h @ w_hz + b_z)
    rh = r * h
    n = np.tanh(x @ w_xn + rh @ w_hn + b_n)
    out = (1.0 - z) * n + z * h
    return out, (r, z, n, rh)


def _gru_cell_vjp(g, inputs, res):
    x, h, w_xr, w_hr, _, w_xz, w_hz, _, w_xn, w_hn, _ = inputs
    r, z, n, rh = res

    dz = g * (h - n)
    dn = g * (1.0 - z)
    dh = g * z

    dpre_n = dn * (1.0 - n**2)
    db_n = dpre_n.sum(axis=0)
    dw_xn = x.T @ dpre_n
    dx = dpre_n @ w_xn.T
    dw_hn = rh.T @ dpre_n
    drh = dpre_n @ w_hn.T
    dr = drh * h
    dh = dh + drh * r

    dpre_r = dr * r * (1.0 - r)
    db_r = dpre_r.sum(axis=0)
    dw_xr = x.T @ dpre_r
    dw_hr = h.T @ dpre_r
    dx = dx + dpre_r @ w_xr.T
    dh = dh + dpre_r @ w_hr.T

    dpre_z = dz * z * (1.0 - z)
    db_z = dpre_z.sum(axis=0)
    dw_xz = x.T @ dpre_z
    dw_hz = h.T @ dpre_z
    dx = dx + dpre_z @ w_xz.T
    dh = dh + dpre_z @ w_hz.T

    return (dx, dh, dw_xr, dw_hr, db_r, dw_xz, dw_hz, db_z, dw_xn, dw_hn, db_n)


register_op("gru_cell", _gru_cell_forward, _gru_cell_vjp)


# ----------------------------------------------------------------------
# gat_attention: everything in GATLayer.forward after the projection
# ----------------------------------------------------------------------
def _gat_attention_forward(wh, a_src, a_dst, *, mask, negative_slope):
    src = wh @ a_src                       # (N, 1)
    dst = wh @ a_dst                       # (N, 1)
    pre = src + dst.T                      # (N, N)
    lmask = np.where(pre > 0, 1.0, negative_slope)
    scores = pre * lmask
    neg_inf = np.where(mask > 0, 0.0, -1e9)
    sm_in = scores + neg_inf
    shifted = sm_in - sm_in.max(axis=1, keepdims=True)
    e = np.exp(shifted)
    soft = e / e.sum(axis=1, keepdims=True)
    u = soft * mask
    ssum = u.sum(axis=1, keepdims=True) + 1e-12
    al = u / ssum
    pre_out = al @ wh
    neg = np.exp(np.clip(pre_out, None, 0)) - 1.0
    out = np.where(pre_out > 0, pre_out, neg)
    elu_local = np.where(pre_out > 0, 1.0, neg + 1.0)
    return out, (lmask, soft, u, ssum, al, elu_local)


def _gat_attention_vjp(g, inputs, res, *, mask, negative_slope):
    wh, a_src, a_dst = inputs
    lmask, soft, u, ssum, al, elu_local = res

    dpre_out = g * elu_local
    dal = dpre_out @ wh.T
    dwh = al.T @ dpre_out
    # al = u / ssum with ssum = sum_j u + 1e-12
    du = dal / ssum
    dssum = (-(dal * u) / ssum**2).sum(axis=1, keepdims=True)
    du = du + dssum
    dsoft = du * mask
    # softmax over axis=1
    dsm = soft * (dsoft - (dsoft * soft).sum(axis=1, keepdims=True))
    dpre = dsm * lmask
    dsrc = dpre.sum(axis=1, keepdims=True)      # (N, 1)
    ddst = dpre.sum(axis=0, keepdims=True).T    # (N, 1)
    dwh = dwh + dsrc @ a_src.T + ddst @ a_dst.T
    da_src = wh.T @ dsrc
    da_dst = wh.T @ ddst
    return dwh, da_src, da_dst


register_op("gat_attention", _gat_attention_forward, _gat_attention_vjp)


# ----------------------------------------------------------------------
# pairwise_mlp2: 2-layer MLP over all pairwise differences s_i - s_j
# ----------------------------------------------------------------------
def _unpack_pairwise(arrays, has_b1, has_b2):
    it = iter(arrays)
    s, w1 = next(it), next(it)
    b1 = next(it) if has_b1 else None
    w2 = next(it)
    b2 = next(it) if has_b2 else None
    return s, w1, b1, w2, b2


def _pairwise_mlp2_forward(
    *arrays, activation, negative_slope=0.2, has_b1=True, has_b2=True
):
    s, w1, b1, w2, b2 = _unpack_pairwise(arrays, has_b1, has_b2)
    proj = s @ w1                                   # (N, h): the O(N·d·h) trick
    pre = proj[:, None, :] - proj[None, :, :]       # (N, N, h)
    if b1 is not None:
        pre = pre + b1
    hid, local = _act_with_local(activation, pre, negative_slope)
    feats = hid @ w2                                # (N, N, K)
    if b2 is not None:
        feats = feats + b2
    return feats, (local, hid)


def _pairwise_mlp2_vjp(
    g, inputs, res, *, activation, negative_slope=0.2, has_b1=True, has_b2=True
):
    local, hid = res
    s, w1, b1, w2, b2 = _unpack_pairwise(inputs, has_b1, has_b2)
    hdim = hid.shape[-1]
    k = g.shape[-1]

    dhid = g @ w2.T
    dw2 = hid.reshape(-1, hdim).T @ g.reshape(-1, k)
    db2 = g.sum(axis=(0, 1)) if has_b2 else None
    dpre = dhid if local is None else dhid * local
    db1 = dpre.sum(axis=(0, 1)) if has_b1 else None
    # pre_ij depends on +proj_i and -proj_j
    dproj = dpre.sum(axis=1) - dpre.sum(axis=0)     # (N, h)
    ds = dproj @ w1.T
    dw1 = s.T @ dproj

    grads = [ds, dw1]
    if has_b1:
        grads.append(db1)
    grads.append(dw2)
    if has_b2:
        grads.append(db2)
    return tuple(grads)


register_op("pairwise_mlp2", _pairwise_mlp2_forward, _pairwise_mlp2_vjp)


# ----------------------------------------------------------------------
# mixbern_row_loglik: per-row mixture-component Bernoulli log-likelihood
# ----------------------------------------------------------------------
def _mixbern_row_loglik_forward(feats, *, adjacency, eps):
    theta = stable_sigmoid(feats)                   # (N, N, K)
    theta_c = np.clip(theta, eps, 1.0 - eps)
    a = adjacency[:, :, None]
    n = feats.shape[0]
    dmask = (1.0 - np.eye(n))[:, :, None]
    log_bern = a * np.log(theta_c) + (1.0 - a) * np.log(1.0 - theta_c)
    out = (log_bern * dmask).sum(axis=1)            # (N, K)
    return out, theta


def _mixbern_row_loglik_vjp(g, inputs, theta, *, adjacency, eps):
    theta_c = np.clip(theta, eps, 1.0 - eps)
    a = adjacency[:, :, None]
    n = theta.shape[0]
    dmask = (1.0 - np.eye(n))[:, :, None]
    clip_mask = ((theta >= eps) & (theta <= 1.0 - eps)).astype(np.float64)
    dtheta_c = g[:, None, :] * dmask * (a / theta_c - (1.0 - a) / (1.0 - theta_c))
    dfeats = dtheta_c * clip_mask * theta * (1.0 - theta)
    return (dfeats,)


register_op("mixbern_row_loglik", _mixbern_row_loglik_forward, _mixbern_row_loglik_vjp)
