"""Functional (free-function) differentiable operations.

These complement the operator methods on :class:`~repro.autodiff.Tensor`:
nonlinearities, stable softmax / log-sum-exp, concatenation, stacking and
the numerically careful primitives the VRDAG losses need (clipped log,
sigmoid in the stable regime, etc.).
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

import numpy as np

from repro.autodiff.tensor import Tensor, as_tensor, unbroadcast

__all__ = [
    "exp",
    "log",
    "sqrt",
    "abs_",
    "sigmoid",
    "tanh",
    "relu",
    "leaky_relu",
    "elu",
    "softplus",
    "softmax",
    "log_softmax",
    "logsumexp",
    "clip",
    "concat",
    "stack",
    "where",
    "dropout",
    "maximum",
    "minimum",
    "norm",
]


def exp(x: Tensor) -> Tensor:
    """Elementwise ``e**x``."""
    x = as_tensor(x)
    data = np.exp(x.data)
    return Tensor._from_op(data, (x,), (lambda g: g * data,), "exp")


def log(x: Tensor, eps: float = 0.0) -> Tensor:
    """Natural log; pass ``eps`` to clamp the argument away from zero."""
    x = as_tensor(x)
    arg = x.data + eps if eps else x.data
    data = np.log(arg)
    return Tensor._from_op(data, (x,), (lambda g: g / arg,), "log")


def sqrt(x: Tensor) -> Tensor:
    """Elementwise square root."""
    x = as_tensor(x)
    data = np.sqrt(x.data)
    return Tensor._from_op(data, (x,), (lambda g: g * 0.5 / data,), "sqrt")


def abs_(x: Tensor) -> Tensor:
    """Elementwise absolute value (subgradient 0 at 0)."""
    x = as_tensor(x)
    data = np.abs(x.data)
    return Tensor._from_op(data, (x,), (lambda g: g * np.sign(x.data),), "abs")


def sigmoid(x: Tensor) -> Tensor:
    """Elementwise logistic sigmoid ``1 / (1 + e**-x)``."""
    x = as_tensor(x)
    # numerically stable piecewise computation
    data = np.where(
        x.data >= 0,
        1.0 / (1.0 + np.exp(-np.clip(x.data, 0, None))),
        np.exp(np.clip(x.data, None, 0)) / (1.0 + np.exp(np.clip(x.data, None, 0))),
    )
    return Tensor._from_op(data, (x,), (lambda g: g * data * (1.0 - data),), "sigmoid")


def tanh(x: Tensor) -> Tensor:
    """Elementwise hyperbolic tangent."""
    x = as_tensor(x)
    data = np.tanh(x.data)
    return Tensor._from_op(data, (x,), (lambda g: g * (1.0 - data**2),), "tanh")


def relu(x: Tensor) -> Tensor:
    """Elementwise ``max(x, 0)``."""
    x = as_tensor(x)
    data = np.maximum(x.data, 0.0)
    mask = (x.data > 0).astype(np.float64)
    return Tensor._from_op(data, (x,), (lambda g: g * mask,), "relu")


def leaky_relu(x: Tensor, negative_slope: float = 0.2) -> Tensor:
    """Elementwise LeakyReLU: ``x`` if positive else ``slope * x``."""
    x = as_tensor(x)
    mask = np.where(x.data > 0, 1.0, negative_slope)
    data = x.data * mask
    return Tensor._from_op(data, (x,), (lambda g: g * mask,), "leaky_relu")


def elu(x: Tensor, alpha: float = 1.0) -> Tensor:
    """Elementwise ELU: ``x`` if positive else ``alpha * (e**x - 1)``."""
    x = as_tensor(x)
    neg = alpha * (np.exp(np.clip(x.data, None, 0)) - 1.0)
    data = np.where(x.data > 0, x.data, neg)
    local = np.where(x.data > 0, 1.0, neg + alpha)
    return Tensor._from_op(data, (x,), (lambda g: g * local,), "elu")


def softplus(x: Tensor) -> Tensor:
    """Elementwise ``log(1 + e**x)`` (numerically stabilized)."""
    x = as_tensor(x)
    data = np.logaddexp(0.0, x.data)
    sig = 1.0 / (1.0 + np.exp(-np.clip(x.data, -60, 60)))
    return Tensor._from_op(data, (x,), (lambda g: g * sig,), "softplus")


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Softmax along ``axis`` (shift-stabilized)."""
    x = as_tensor(x)
    shifted = x.data - x.data.max(axis=axis, keepdims=True)
    e = np.exp(shifted)
    data = e / e.sum(axis=axis, keepdims=True)

    def back(g: np.ndarray) -> np.ndarray:
        dot = (g * data).sum(axis=axis, keepdims=True)
        return data * (g - dot)

    return Tensor._from_op(data, (x,), (back,), "softmax")


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Log-softmax along ``axis`` (shift-stabilized)."""
    x = as_tensor(x)
    shifted = x.data - x.data.max(axis=axis, keepdims=True)
    lse = np.log(np.exp(shifted).sum(axis=axis, keepdims=True))
    data = shifted - lse
    soft = np.exp(data)

    def back(g: np.ndarray) -> np.ndarray:
        return g - soft * g.sum(axis=axis, keepdims=True)

    return Tensor._from_op(data, (x,), (back,), "log_softmax")


def logsumexp(x: Tensor, axis: int = -1, keepdims: bool = False) -> Tensor:
    """``log(sum(e**x))`` along ``axis`` (shift-stabilized)."""
    x = as_tensor(x)
    m = x.data.max(axis=axis, keepdims=True)
    e = np.exp(x.data - m)
    s = e.sum(axis=axis, keepdims=True)
    data = np.log(s) + m
    soft = e / s

    def back(g: np.ndarray) -> np.ndarray:
        gg = g
        if not keepdims:
            gg = np.expand_dims(gg, axis=axis)
        return gg * soft

    if not keepdims:
        data = np.squeeze(data, axis=axis)
    return Tensor._from_op(np.asarray(data), (x,), (back,), "logsumexp")


def clip(x: Tensor, lo: float, hi: float) -> Tensor:
    """Elementwise clamp to ``[lo, hi]``; gradient is 1 inside, 0 outside."""
    x = as_tensor(x)
    data = np.clip(x.data, lo, hi)
    mask = ((x.data >= lo) & (x.data <= hi)).astype(np.float64)
    return Tensor._from_op(data, (x,), (lambda g: g * mask,), "clip")


def concat(tensors: Sequence[Tensor], axis: int = -1) -> Tensor:
    """Concatenate tensors along ``axis``; gradients split back."""
    tensors = [as_tensor(t) for t in tensors]
    data = np.concatenate([t.data for t in tensors], axis=axis)
    sizes = [t.data.shape[axis] for t in tensors]
    offsets = np.cumsum([0] + sizes)

    def make_back(i: int):
        def back(g: np.ndarray) -> np.ndarray:
            sl = [slice(None)] * g.ndim
            sl[axis] = slice(offsets[i], offsets[i + 1])
            return g[tuple(sl)]

        return back

    backs = tuple(make_back(i) for i in range(len(tensors)))
    return Tensor._from_op(data, tuple(tensors), backs, "concat")


def stack(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Stack tensors along a new ``axis``; gradients unstack."""
    tensors = [as_tensor(t) for t in tensors]
    data = np.stack([t.data for t in tensors], axis=axis)

    def make_back(i: int):
        def back(g: np.ndarray) -> np.ndarray:
            return np.take(g, i, axis=axis)

        return back

    backs = tuple(make_back(i) for i in range(len(tensors)))
    return Tensor._from_op(data, tuple(tensors), backs, "stack")


def where(cond: np.ndarray, a: Tensor, b: Tensor) -> Tensor:
    """Differentiable select; ``cond`` is a non-differentiable boolean mask."""
    cond = np.asarray(cond, dtype=bool)
    a, b = as_tensor(a), as_tensor(b)
    data = np.where(cond, a.data, b.data)
    return Tensor._from_op(
        data,
        (a, b),
        (
            lambda g: unbroadcast(g * cond, a.shape),
            lambda g: unbroadcast(g * (~cond), b.shape),
        ),
        "where",
    )


def maximum(a: Tensor, b: Tensor) -> Tensor:
    """Elementwise maximum of two tensors (ties route grad to the first)."""
    a, b = as_tensor(a), as_tensor(b)
    return where(a.data >= b.data, a, b)


def minimum(a: Tensor, b: Tensor) -> Tensor:
    """Elementwise minimum of two tensors (ties route grad to the first)."""
    a, b = as_tensor(a), as_tensor(b)
    return where(a.data <= b.data, a, b)


def dropout(x: Tensor, p: float, rng: np.random.Generator, training: bool = True) -> Tensor:
    """Inverted dropout with keep-scale applied at training time."""
    if not training or p <= 0.0:
        return as_tensor(x)
    x = as_tensor(x)
    keep = 1.0 - p
    mask = (rng.random(x.shape) < keep).astype(np.float64) / keep
    data = x.data * mask
    return Tensor._from_op(data, (x,), (lambda g: g * mask,), "dropout")


def norm(x: Tensor, axis: int = -1, keepdims: bool = False, eps: float = 1e-12) -> Tensor:
    """Euclidean norm along ``axis`` (smoothed to stay differentiable at 0)."""
    x = as_tensor(x)
    sq = (x * x).sum(axis=axis, keepdims=keepdims)
    return sqrt(sq + eps)


# ----------------------------------------------------------------------
# attach convenience methods to Tensor
# ----------------------------------------------------------------------
def _attach():
    Tensor.exp = lambda self: exp(self)
    Tensor.log = lambda self, eps=0.0: log(self, eps)
    Tensor.sqrt = lambda self: sqrt(self)
    Tensor.abs = lambda self: abs_(self)
    Tensor.sigmoid = lambda self: sigmoid(self)
    Tensor.tanh = lambda self: tanh(self)
    Tensor.relu = lambda self: relu(self)
    Tensor.clip = lambda self, lo, hi: clip(self, lo, hi)
    Tensor.softmax = lambda self, axis=-1: softmax(self, axis)


_attach()
