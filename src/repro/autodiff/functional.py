"""Functional (free-function) differentiable operations.

These complement the operator methods on :class:`~repro.autodiff.Tensor`
and :class:`~repro.autodiff.tape.Variable`: nonlinearities, stable
softmax / log-sum-exp, concatenation, stacking and the numerically
careful primitives the VRDAG losses need (clipped log, sigmoid in the
stable regime, etc.).

Every function is engine-polymorphic: if an argument is a tape
Variable — or a :class:`~repro.autodiff.tape.Tape` is active with grads
enabled — the op is recorded on the tape via the registered kernel in
:mod:`repro.autodiff.ops`; otherwise it builds the legacy closure
graph.  Both paths compute identical values (the kernels share the
exact same NumPy expressions).
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

import numpy as np

from repro.autodiff.tensor import Tensor, as_tensor, unbroadcast
from repro.autodiff.tape import Variable, tape_for

__all__ = [
    "exp",
    "log",
    "sqrt",
    "abs_",
    "sigmoid",
    "tanh",
    "relu",
    "leaky_relu",
    "elu",
    "softplus",
    "softmax",
    "log_softmax",
    "logsumexp",
    "clip",
    "concat",
    "stack",
    "where",
    "dropout",
    "maximum",
    "minimum",
    "norm",
]


def exp(x: Tensor) -> Tensor:
    """Elementwise ``e**x``."""
    t = tape_for(x)
    if t is not None:
        return t.apply("exp", (x,))
    x = as_tensor(x)
    data = np.exp(x.data)
    return Tensor._from_op(data, (x,), (lambda g: g * data,), "exp")


def log(x: Tensor, eps: float = 0.0) -> Tensor:
    """Natural log; pass ``eps`` to clamp the argument away from zero."""
    t = tape_for(x)
    if t is not None:
        return t.apply("log", (x,), eps=eps)
    x = as_tensor(x)
    arg = x.data + eps if eps else x.data
    data = np.log(arg)
    return Tensor._from_op(data, (x,), (lambda g: g / arg,), "log")


def sqrt(x: Tensor) -> Tensor:
    """Elementwise square root."""
    t = tape_for(x)
    if t is not None:
        return t.apply("sqrt", (x,))
    x = as_tensor(x)
    data = np.sqrt(x.data)
    return Tensor._from_op(data, (x,), (lambda g: g * 0.5 / data,), "sqrt")


def abs_(x: Tensor) -> Tensor:
    """Elementwise absolute value (subgradient 0 at 0)."""
    t = tape_for(x)
    if t is not None:
        return t.apply("abs", (x,))
    x = as_tensor(x)
    data = np.abs(x.data)
    return Tensor._from_op(data, (x,), (lambda g: g * np.sign(x.data),), "abs")


def sigmoid(x: Tensor) -> Tensor:
    """Elementwise logistic sigmoid ``1 / (1 + e**-x)``."""
    t = tape_for(x)
    if t is not None:
        return t.apply("sigmoid", (x,))
    x = as_tensor(x)
    # numerically stable piecewise computation
    data = np.where(
        x.data >= 0,
        1.0 / (1.0 + np.exp(-np.clip(x.data, 0, None))),
        np.exp(np.clip(x.data, None, 0)) / (1.0 + np.exp(np.clip(x.data, None, 0))),
    )
    return Tensor._from_op(data, (x,), (lambda g: g * data * (1.0 - data),), "sigmoid")


def tanh(x: Tensor) -> Tensor:
    """Elementwise hyperbolic tangent."""
    t = tape_for(x)
    if t is not None:
        return t.apply("tanh", (x,))
    x = as_tensor(x)
    data = np.tanh(x.data)
    return Tensor._from_op(data, (x,), (lambda g: g * (1.0 - data**2),), "tanh")


def relu(x: Tensor) -> Tensor:
    """Elementwise ``max(x, 0)``."""
    t = tape_for(x)
    if t is not None:
        return t.apply("relu", (x,))
    x = as_tensor(x)
    data = np.maximum(x.data, 0.0)
    mask = (x.data > 0).astype(np.float64)
    return Tensor._from_op(data, (x,), (lambda g: g * mask,), "relu")


def leaky_relu(x: Tensor, negative_slope: float = 0.2) -> Tensor:
    """Elementwise LeakyReLU: ``x`` if positive else ``slope * x``."""
    t = tape_for(x)
    if t is not None:
        return t.apply("leaky_relu", (x,), negative_slope=negative_slope)
    x = as_tensor(x)
    mask = np.where(x.data > 0, 1.0, negative_slope)
    data = x.data * mask
    return Tensor._from_op(data, (x,), (lambda g: g * mask,), "leaky_relu")


def elu(x: Tensor, alpha: float = 1.0) -> Tensor:
    """Elementwise ELU: ``x`` if positive else ``alpha * (e**x - 1)``."""
    t = tape_for(x)
    if t is not None:
        return t.apply("elu", (x,), alpha=alpha)
    x = as_tensor(x)
    neg = alpha * (np.exp(np.clip(x.data, None, 0)) - 1.0)
    data = np.where(x.data > 0, x.data, neg)
    local = np.where(x.data > 0, 1.0, neg + alpha)
    return Tensor._from_op(data, (x,), (lambda g: g * local,), "elu")


def softplus(x: Tensor) -> Tensor:
    """Elementwise ``log(1 + e**x)`` (numerically stabilized)."""
    t = tape_for(x)
    if t is not None:
        return t.apply("softplus", (x,))
    x = as_tensor(x)
    data = np.logaddexp(0.0, x.data)
    sig = 1.0 / (1.0 + np.exp(-np.clip(x.data, -60, 60)))
    return Tensor._from_op(data, (x,), (lambda g: g * sig,), "softplus")


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Softmax along ``axis`` (shift-stabilized)."""
    t = tape_for(x)
    if t is not None:
        return t.apply("softmax", (x,), axis=axis)
    x = as_tensor(x)
    shifted = x.data - x.data.max(axis=axis, keepdims=True)
    e = np.exp(shifted)
    data = e / e.sum(axis=axis, keepdims=True)

    def back(g: np.ndarray) -> np.ndarray:
        dot = (g * data).sum(axis=axis, keepdims=True)
        return data * (g - dot)

    return Tensor._from_op(data, (x,), (back,), "softmax")


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Log-softmax along ``axis`` (shift-stabilized)."""
    t = tape_for(x)
    if t is not None:
        return t.apply("log_softmax", (x,), axis=axis)
    x = as_tensor(x)
    shifted = x.data - x.data.max(axis=axis, keepdims=True)
    lse = np.log(np.exp(shifted).sum(axis=axis, keepdims=True))
    data = shifted - lse
    soft = np.exp(data)

    def back(g: np.ndarray) -> np.ndarray:
        return g - soft * g.sum(axis=axis, keepdims=True)

    return Tensor._from_op(data, (x,), (back,), "log_softmax")


def logsumexp(x: Tensor, axis: int = -1, keepdims: bool = False) -> Tensor:
    """``log(sum(e**x))`` along ``axis`` (shift-stabilized)."""
    t = tape_for(x)
    if t is not None:
        return t.apply("logsumexp", (x,), axis=axis, keepdims=keepdims)
    x = as_tensor(x)
    m = x.data.max(axis=axis, keepdims=True)
    e = np.exp(x.data - m)
    s = e.sum(axis=axis, keepdims=True)
    data = np.log(s) + m
    soft = e / s

    def back(g: np.ndarray) -> np.ndarray:
        gg = g
        if not keepdims:
            gg = np.expand_dims(gg, axis=axis)
        return gg * soft

    if not keepdims:
        data = np.squeeze(data, axis=axis)
    return Tensor._from_op(np.asarray(data), (x,), (back,), "logsumexp")


def clip(x: Tensor, lo: float, hi: float) -> Tensor:
    """Elementwise clamp to ``[lo, hi]``; gradient is 1 inside, 0 outside."""
    t = tape_for(x)
    if t is not None:
        return t.apply("clip", (x,), lo=lo, hi=hi)
    x = as_tensor(x)
    data = np.clip(x.data, lo, hi)
    mask = ((x.data >= lo) & (x.data <= hi)).astype(np.float64)
    return Tensor._from_op(data, (x,), (lambda g: g * mask,), "clip")


def concat(tensors: Sequence[Tensor], axis: int = -1) -> Tensor:
    """Concatenate tensors along ``axis``; gradients split back."""
    t = tape_for(*tensors)
    if t is not None:
        return t.apply("concat", tuple(tensors), axis=axis)
    tensors = [as_tensor(t_) for t_ in tensors]
    data = np.concatenate([t_.data for t_ in tensors], axis=axis)
    sizes = [t_.data.shape[axis] for t_ in tensors]
    offsets = np.cumsum([0] + sizes)

    def make_back(i: int):
        def back(g: np.ndarray) -> np.ndarray:
            sl = [slice(None)] * g.ndim
            sl[axis] = slice(offsets[i], offsets[i + 1])
            return g[tuple(sl)]

        return back

    backs = tuple(make_back(i) for i in range(len(tensors)))
    return Tensor._from_op(data, tuple(tensors), backs, "concat")


def stack(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Stack tensors along a new ``axis``; gradients unstack."""
    t = tape_for(*tensors)
    if t is not None:
        return t.apply("stack", tuple(tensors), axis=axis)
    tensors = [as_tensor(t_) for t_ in tensors]
    data = np.stack([t_.data for t_ in tensors], axis=axis)

    def make_back(i: int):
        def back(g: np.ndarray) -> np.ndarray:
            return np.take(g, i, axis=axis)

        return back

    backs = tuple(make_back(i) for i in range(len(tensors)))
    return Tensor._from_op(data, tuple(tensors), backs, "stack")


def where(cond: np.ndarray, a: Tensor, b: Tensor) -> Tensor:
    """Differentiable select; ``cond`` is a non-differentiable boolean mask."""
    cond = np.asarray(cond, dtype=bool)
    t = tape_for(a, b)
    if t is not None:
        return t.apply("where", (a, b), cond=cond)
    a, b = as_tensor(a), as_tensor(b)
    data = np.where(cond, a.data, b.data)
    return Tensor._from_op(
        data,
        (a, b),
        (
            lambda g: unbroadcast(g * cond, a.shape),
            lambda g: unbroadcast(g * (~cond), b.shape),
        ),
        "where",
    )


def _raw(v) -> np.ndarray:
    return v.data if isinstance(v, (Tensor, Variable)) else np.asarray(v)


def maximum(a: Tensor, b: Tensor) -> Tensor:
    """Elementwise maximum of two tensors (ties route grad to the first)."""
    if tape_for(a, b) is None:
        a, b = as_tensor(a), as_tensor(b)
    return where(_raw(a) >= _raw(b), a, b)


def minimum(a: Tensor, b: Tensor) -> Tensor:
    """Elementwise minimum of two tensors (ties route grad to the first)."""
    if tape_for(a, b) is None:
        a, b = as_tensor(a), as_tensor(b)
    return where(_raw(a) <= _raw(b), a, b)


def dropout(x: Tensor, p: float, rng: np.random.Generator, training: bool = True) -> Tensor:
    """Inverted dropout with keep-scale applied at training time."""
    if not training or p <= 0.0:
        return x if isinstance(x, Variable) else as_tensor(x)
    t = tape_for(x)
    if t is not None:
        return t.apply("dropout", (x,), p=p, rng=rng)
    x = as_tensor(x)
    keep = 1.0 - p
    mask = (rng.random(x.shape) < keep).astype(np.float64) / keep
    data = x.data * mask
    return Tensor._from_op(data, (x,), (lambda g: g * mask,), "dropout")


def norm(x: Tensor, axis: int = -1, keepdims: bool = False, eps: float = 1e-12) -> Tensor:
    """Euclidean norm along ``axis`` (smoothed to stay differentiable at 0)."""
    if not isinstance(x, Variable):
        x = as_tensor(x)
    sq = (x * x).sum(axis=axis, keepdims=keepdims)
    return sqrt(sq + eps)


# ----------------------------------------------------------------------
# attach convenience methods to Tensor and Variable
# ----------------------------------------------------------------------
def _attach():
    for cls in (Tensor, Variable):
        cls.exp = lambda self: exp(self)
        cls.log = lambda self, eps=0.0: log(self, eps)
        cls.sqrt = lambda self: sqrt(self)
        cls.abs = lambda self: abs_(self)
        cls.sigmoid = lambda self: sigmoid(self)
        cls.tanh = lambda self: tanh(self)
        cls.relu = lambda self: relu(self)
        cls.clip = lambda self, lo, hi: clip(self, lo, hi)
        cls.softmax = lambda self, axis=-1: softmax(self, axis)


_attach()
