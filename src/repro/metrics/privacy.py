"""Privacy / leakage metrics for synthetic graph release.

The paper motivates graph generation partly as anonymization (§I,
motivation 3): "the simulated graph anonymizes node entities and their
link relationships, preventing information leakage of private data."
A release pipeline therefore needs to *measure* leakage, not assert
it.  This module provides the standard checks:

* :func:`edge_overlap` — fraction of the original's temporal edges
  reproduced verbatim by the synthetic graph (per-timestep identity
  matters: ``(u, v, t)`` triples).  Chance-level overlap means link
  relationships are not memorized.
* :func:`expected_chance_overlap` — the overlap a density-matched
  random generator would produce, the baseline to compare against.
* :func:`attribute_nn_distance` — mean distance from each original
  node-attribute row to its nearest synthetic row, normalized by the
  original's internal nearest-neighbour distance.  Values ≪ 1 indicate
  the generator is replaying training rows (memorization); ≈ 1 means
  the synthetic data is about as close to the originals as they are to
  each other.
* :func:`degree_sequence_uniqueness` — fraction of nodes whose
  temporal degree fingerprint (the per-timestep degree vector, a
  classic re-identification key) appears verbatim in the synthetic
  graph.
* :func:`privacy_report` — the full set as a dict.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.graph import DynamicAttributedGraph


def _check_compatible(
    original: DynamicAttributedGraph, synthetic: DynamicAttributedGraph
) -> None:
    if original.num_nodes != synthetic.num_nodes:
        raise ValueError(
            f"node counts differ: {original.num_nodes} vs {synthetic.num_nodes}"
        )


def edge_overlap(
    original: DynamicAttributedGraph, synthetic: DynamicAttributedGraph
) -> float:
    """Fraction of original ``(u, v, t)`` edges present in the synthetic.

    Timesteps beyond the shorter sequence are ignored.  One sorted-key
    intersection over the stores' composite temporal edge keys —
    O(M), no dense adjacency.
    """
    _check_compatible(original, synthetic)
    t_len = min(original.num_timesteps, synthetic.num_timesteps)
    n = original.num_nodes
    bound = t_len * n * n  # keys of timesteps < t_len are below this
    orig_keys = original.store.temporal_edge_keys()
    syn_keys = synthetic.store.temporal_edge_keys()
    orig_keys = orig_keys[: np.searchsorted(orig_keys, bound)]
    syn_keys = syn_keys[: np.searchsorted(syn_keys, bound)]
    total = int(orig_keys.size)
    matched = int(np.intersect1d(orig_keys, syn_keys, assume_unique=True).size)
    return matched / total if total else 0.0


def expected_chance_overlap(
    original: DynamicAttributedGraph, synthetic: DynamicAttributedGraph
) -> float:
    """Overlap a density-matched uniform-random generator would score.

    For each timestep the chance of reproducing one specific edge is
    the synthetic snapshot's density; the expectation averages this
    over the original's edges.
    """
    _check_compatible(original, synthetic)
    t_len = min(original.num_timesteps, synthetic.num_timesteps)
    n = original.num_nodes
    pairs = max(n * (n - 1), 1)
    expected = 0.0
    total = 0
    for t in range(t_len):
        m_orig = original[t].num_edges
        expected += m_orig * (synthetic[t].num_edges / pairs)
        total += m_orig
    return expected / total if total else 0.0


def attribute_nn_distance(
    original: DynamicAttributedGraph,
    synthetic: DynamicAttributedGraph,
    max_rows: int = 2000,
    seed: int = 0,
) -> float:
    """Normalized nearest-neighbour distance (memorization check).

    Returns ``mean_orig min_syn ||x_o - x_s|| / mean_orig min_other
    ||x_o - x_o'||``; ≪ 1 flags training-row replay, ≈ 1 (or above) is
    healthy.  Rows are subsampled to ``max_rows`` per side for cost.
    Returns ``nan`` for attribute-free graphs.
    """
    if original.num_attributes == 0:
        return float("nan")
    _check_compatible(original, synthetic)
    rng = np.random.default_rng(seed)
    f = original.num_attributes
    orig = original.attribute_tensor().reshape(-1, f)
    syn = synthetic.attribute_tensor().reshape(-1, f)
    if len(orig) > max_rows:
        orig = orig[rng.choice(len(orig), size=max_rows, replace=False)]
    if len(syn) > max_rows:
        syn = syn[rng.choice(len(syn), size=max_rows, replace=False)]
    cross = np.sqrt(
        ((orig[:, None, :] - syn[None, :, :]) ** 2).sum(-1)
    ).min(axis=1)
    within = np.sqrt(((orig[:, None, :] - orig[None, :, :]) ** 2).sum(-1))
    np.fill_diagonal(within, np.inf)
    within_nn = within.min(axis=1)
    denom = within_nn.mean()
    if denom == 0:
        return float("inf") if cross.mean() > 0 else 1.0
    return float(cross.mean() / denom)


def degree_sequence_uniqueness(
    original: DynamicAttributedGraph, synthetic: DynamicAttributedGraph
) -> float:
    """Fraction of original temporal-degree fingerprints replayed.

    A node's fingerprint is its per-timestep total-degree vector — a
    common re-identification side channel.  Only non-trivial
    fingerprints (some activity) are counted.
    """
    _check_compatible(original, synthetic)
    t_len = min(original.num_timesteps, synthetic.num_timesteps)

    def fingerprints(graph: DynamicAttributedGraph) -> np.ndarray:
        # (N, T) per-node temporal degree matrix, one bincount per step
        return np.stack(
            [graph[t].degrees().astype(np.int64) for t in range(t_len)],
            axis=1,
        )

    orig_fp = {tuple(row) for row in fingerprints(original).tolist()}
    orig_fp = {fp for fp in orig_fp if any(fp)}
    syn_fp = {tuple(row) for row in fingerprints(synthetic).tolist()}
    if not orig_fp:
        return 0.0
    return len(orig_fp & syn_fp) / len(orig_fp)


def privacy_report(
    original: DynamicAttributedGraph, synthetic: DynamicAttributedGraph
) -> Dict[str, float]:
    """All leakage checks in one dict (see module docstring)."""
    return {
        "edge_overlap": edge_overlap(original, synthetic),
        "chance_overlap": expected_chance_overlap(original, synthetic),
        "attr_nn_distance": attribute_nn_distance(original, synthetic),
        "degree_fp_overlap": degree_sequence_uniqueness(original, synthetic),
    }
