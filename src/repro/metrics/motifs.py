"""Directed triad / temporal motif analytics.

Dymond (Zeno et al., 2021) — one of the paper's dynamic baselines —
models graph evolution through *motif* activity: which 3-node
substructures exist, appear and persist over time.  This module
provides the motif substrate used to evaluate that behaviour:

* :func:`triad_census` — the 16-class Holland–Leinhardt directed triad
  census of one snapshot (from scratch; validated against networkx in
  the test suite).
* :func:`motif_count_series` — per-snapshot census of a dynamic graph,
  shape ``(T, 16)``.
* :func:`motif_transition_matrix` — how individual node triples move
  between triad classes in consecutive snapshots (the arrival/decay
  dynamics Dymond parameterizes), shape ``(16, 16)``.
* :func:`motif_discrepancy` — Eq.-19-style average percentage
  discrepancy between the motif profiles of two dynamic graphs.

The census enumerates all ``C(N, 3)`` triples with vectorized adjacency
gathers — O(N^3) but fully in numpy, comfortable for the laptop-scale
snapshots used here (N up to a few hundred).
"""

from __future__ import annotations

from itertools import permutations
from typing import Dict, List

import numpy as np

from repro.graph.dynamic import DynamicAttributedGraph
from repro.graph.snapshot import GraphSnapshot

#: Holland–Leinhardt triad type names, in conventional order.
TRIAD_NAMES = (
    "003", "012", "102", "021D", "021U", "021C", "111D", "111U",
    "030T", "030C", "201", "120D", "120U", "120C", "210", "300",
)

#: Canonical edge set of each triad type over nodes (0, 1, 2) — the
#: same representatives networkx's ``triad_graph`` uses (a=0, b=1, c=2).
_TRIAD_EDGES: Dict[str, List[tuple]] = {
    "003": [],
    "012": [(0, 1)],
    "102": [(0, 1), (1, 0)],
    "021D": [(1, 0), (1, 2)],
    "021U": [(0, 1), (2, 1)],
    "021C": [(0, 1), (1, 2)],
    "111D": [(0, 2), (2, 0), (1, 2)],
    "111U": [(0, 2), (2, 0), (2, 1)],
    "030T": [(0, 1), (2, 1), (0, 2)],
    "030C": [(1, 0), (2, 1), (0, 2)],
    "201": [(0, 1), (1, 0), (0, 2), (2, 0)],
    "120D": [(1, 2), (1, 0), (0, 2), (2, 0)],
    "120U": [(0, 1), (2, 1), (0, 2), (2, 0)],
    "120C": [(0, 1), (1, 2), (0, 2), (2, 0)],
    "210": [(0, 1), (1, 2), (2, 1), (0, 2), (2, 0)],
    "300": [(0, 1), (1, 0), (1, 2), (2, 1), (0, 2), (2, 0)],
}

#: bit position of each ordered pair within a triple's 6-bit edge code
_PAIR_BITS = {(0, 1): 0, (1, 0): 1, (0, 2): 2, (2, 0): 3, (1, 2): 4, (2, 1): 5}


def _edges_to_code(edges: List[tuple]) -> int:
    code = 0
    for u, v in edges:
        code |= 1 << _PAIR_BITS[(u, v)]
    return code


def _permute_code(code: int, perm: tuple) -> int:
    """Edge code after relabeling nodes by ``perm`` (node i -> perm[i])."""
    out = 0
    for (u, v), bit in _PAIR_BITS.items():
        if code & (1 << bit):
            out |= 1 << _PAIR_BITS[(perm[u], perm[v])]
    return out


def _build_code_table() -> np.ndarray:
    """Map each of the 64 edge codes to its triad class index."""
    class_of_code = np.full(64, -1, dtype=int)
    for idx, name in enumerate(TRIAD_NAMES):
        rep = _edges_to_code(_TRIAD_EDGES[name])
        for perm in permutations((0, 1, 2)):
            class_of_code[_permute_code(rep, perm)] = idx
    if np.any(class_of_code < 0):
        raise AssertionError("triad code table incomplete")
    return class_of_code


_CODE_TO_CLASS = _build_code_table()


def _triple_indices(n: int) -> np.ndarray:
    """All (i, j, k) with i < j < k, shape (C(n,3), 3)."""
    i, j, k = np.meshgrid(
        np.arange(n), np.arange(n), np.arange(n), indexing="ij"
    )
    mask = (i < j) & (j < k)
    return np.stack([i[mask], j[mask], k[mask]], axis=1)


def _edge_membership(snapshot: GraphSnapshot) -> np.ndarray:
    """Boolean ``(N, N)`` membership built from the CSR edge columns.

    One scatter over the edge list — store-backed snapshots are never
    densified to float adjacency (the bool mask is the census's own
    O(N²)-bit working set, transient per snapshot).
    """
    n = snapshot.num_nodes
    member = np.zeros((n, n), dtype=bool)
    edges = snapshot.edge_array()
    if len(edges):
        member[edges[:, 0], edges[:, 1]] = True
    return member


def _triple_codes(member: np.ndarray, triples: np.ndarray) -> np.ndarray:
    """6-bit edge code of every triple, shape (num_triples,)."""
    a = member
    i, j, k = triples[:, 0], triples[:, 1], triples[:, 2]
    code = (
        a[i, j].astype(int)
        | (a[j, i].astype(int) << 1)
        | (a[i, k].astype(int) << 2)
        | (a[k, i].astype(int) << 3)
        | (a[j, k].astype(int) << 4)
        | (a[k, j].astype(int) << 5)
    )
    return code


def triad_census(snapshot: GraphSnapshot) -> Dict[str, int]:
    """Count the 16 directed triad classes of one snapshot."""
    n = snapshot.num_nodes
    if n < 3:
        return {name: 0 for name in TRIAD_NAMES}
    triples = _triple_indices(n)
    classes = _CODE_TO_CLASS[_triple_codes(_edge_membership(snapshot), triples)]
    counts = np.bincount(classes, minlength=16)
    return {name: int(counts[i]) for i, name in enumerate(TRIAD_NAMES)}


def motif_count_series(graph: DynamicAttributedGraph) -> np.ndarray:
    """Per-snapshot triad census, shape ``(T, 16)`` in TRIAD_NAMES order."""
    out = np.zeros((graph.num_timesteps, 16), dtype=float)
    for t, snap in enumerate(graph):
        census = triad_census(snap)
        out[t] = [census[name] for name in TRIAD_NAMES]
    return out


def motif_transition_matrix(graph: DynamicAttributedGraph) -> np.ndarray:
    """Triple-level triad-class transition counts across consecutive steps.

    Entry ``(a, b)`` counts node triples that are in class ``a`` at
    timestep ``t`` and class ``b`` at ``t + 1``, summed over ``t`` —
    the empirical motif birth/persistence/decay dynamics that Dymond's
    arrival-rate model assumes stationary.
    """
    n = graph.num_nodes
    trans = np.zeros((16, 16), dtype=float)
    if n < 3 or graph.num_timesteps < 2:
        return trans
    triples = _triple_indices(n)
    prev = _CODE_TO_CLASS[_triple_codes(_edge_membership(graph[0]), triples)]
    for t in range(1, graph.num_timesteps):
        cur = _CODE_TO_CLASS[_triple_codes(_edge_membership(graph[t]), triples)]
        np.add.at(trans, (prev, cur), 1.0)
        prev = cur
    return trans


def motif_persistence(graph: DynamicAttributedGraph) -> Dict[str, float]:
    """Per-class probability that a triple keeps its class next step.

    Classes never observed get persistence ``nan``.
    """
    trans = motif_transition_matrix(graph)
    totals = trans.sum(axis=1)
    out: Dict[str, float] = {}
    for i, name in enumerate(TRIAD_NAMES):
        out[name] = float(trans[i, i] / totals[i]) if totals[i] > 0 else float("nan")
    return out


def motif_discrepancy(
    original: DynamicAttributedGraph,
    generated: DynamicAttributedGraph,
    exclude_empty: bool = True,
) -> float:
    """Eq.-19-style mean relative discrepancy of motif profiles.

    Censuses are averaged over timesteps on each side; the discrepancy
    of class ``c`` is ``|orig_c - gen_c| / orig_c`` and classes absent
    from the original are skipped (``exclude_empty``) or counted as 1.0
    when the generated graph invents them.
    """
    orig = motif_count_series(original).mean(axis=0)
    gen = motif_count_series(generated).mean(axis=0)
    terms: List[float] = []
    for c in range(16):
        if orig[c] > 0:
            terms.append(abs(orig[c] - gen[c]) / orig[c])
        elif not exclude_empty:
            terms.append(0.0 if gen[c] == 0 else 1.0)
    if not terms:
        return 0.0
    return float(np.mean(terms))
