"""Node attribute metrics: JSD, EMD (Fig. 3) and Spearman MAE (Table II)."""

from __future__ import annotations

from typing import Tuple

import numpy as np
from scipy import stats

from repro.graph import DynamicAttributedGraph


def _histogram_pair(
    a: np.ndarray, b: np.ndarray, bins: int
) -> Tuple[np.ndarray, np.ndarray]:
    lo = min(a.min(), b.min())
    hi = max(a.max(), b.max())
    if hi <= lo:
        hi = lo + 1e-9
    edges = np.linspace(lo, hi, bins + 1)
    ha, _ = np.histogram(a, bins=edges)
    hb, _ = np.histogram(b, bins=edges)
    pa = ha / max(ha.sum(), 1)
    pb = hb / max(hb.sum(), 1)
    return pa, pb


def jensen_shannon_divergence(p: np.ndarray, q: np.ndarray) -> float:
    """JSD (natural log), bounded in [0, ln 2]."""
    p = np.asarray(p, dtype=np.float64)
    q = np.asarray(q, dtype=np.float64)
    p = p / max(p.sum(), 1e-12)
    q = q / max(q.sum(), 1e-12)
    m = 0.5 * (p + q)

    def kl(a: np.ndarray, b: np.ndarray) -> float:
        mask = a > 0
        return float(np.sum(a[mask] * np.log(a[mask] / np.maximum(b[mask], 1e-300))))

    return 0.5 * kl(p, m) + 0.5 * kl(q, m)


def earth_movers_distance(a: np.ndarray, b: np.ndarray) -> float:
    """1-Wasserstein distance between two 1-D samples."""
    return float(stats.wasserstein_distance(np.ravel(a), np.ravel(b)))


def attribute_jsd(
    original: DynamicAttributedGraph,
    generated: DynamicAttributedGraph,
    bins: int = 10,
) -> float:
    """Mean JSD between attribute distributions, averaged over
    timesteps and attribute dimensions (the Fig. 3(a) quantity)."""
    steps = min(original.num_timesteps, generated.num_timesteps)
    f = original.num_attributes
    if f == 0:
        return float("nan")
    vals = []
    for t in range(steps):
        for j in range(f):
            pa, pb = _histogram_pair(
                original[t].attributes[:, j], generated[t].attributes[:, j], bins
            )
            vals.append(jensen_shannon_divergence(pa, pb))
    return float(np.mean(vals))


def attribute_emd(
    original: DynamicAttributedGraph, generated: DynamicAttributedGraph
) -> float:
    """Mean EMD between attribute samples (the Fig. 3(b) quantity)."""
    steps = min(original.num_timesteps, generated.num_timesteps)
    f = original.num_attributes
    if f == 0:
        return float("nan")
    vals = []
    for t in range(steps):
        for j in range(f):
            vals.append(
                earth_movers_distance(
                    original[t].attributes[:, j], generated[t].attributes[:, j]
                )
            )
    return float(np.mean(vals))


def spearman_correlation_mae(
    original: DynamicAttributedGraph, generated: DynamicAttributedGraph
) -> float:
    """Table II: MAE across Spearman correlation coefficients of attributes.

    For every timestep, compute the F×F Spearman correlation matrix of
    the original and generated attribute matrices and average the
    absolute entrywise error over the off-diagonal entries; mean over
    timesteps.  Requires F >= 2 (a correlation structure to preserve).
    """
    f = original.num_attributes
    if f < 2:
        raise ValueError("Spearman correlation MAE needs at least 2 attributes")
    steps = min(original.num_timesteps, generated.num_timesteps)
    errs = []
    for t in range(steps):
        c0 = _spearman_matrix(original[t].attributes)
        c1 = _spearman_matrix(generated[t].attributes)
        mask = ~np.eye(f, dtype=bool)
        errs.append(np.abs(c0[mask] - c1[mask]).mean())
    return float(np.mean(errs))


def _spearman_matrix(x: np.ndarray) -> np.ndarray:
    """F×F Spearman correlation matrix (NaNs from constant columns -> 0)."""
    f = x.shape[1]
    if f == 2:
        rho, _ = stats.spearmanr(x[:, 0], x[:, 1])
        rho = 0.0 if np.isnan(rho) else float(rho)
        return np.array([[1.0, rho], [rho, 1.0]])
    rho, _ = stats.spearmanr(x)
    rho = np.atleast_2d(rho)
    return np.nan_to_num(rho, nan=0.0)
