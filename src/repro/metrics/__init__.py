"""Evaluation metrics (paper §IV-A2).

Three families:

* **Graph structure metrics** — MMD between degree / clustering
  distributions, plus average percentage discrepancy (Eq. 19) of
  power-law exponents, wedge counts, component counts and LCC size.
* **Node attribute metrics** — Jensen–Shannon divergence, Earth Mover's
  Distance, and mean absolute error of Spearman correlation matrices
  (Table II).
* **Difference metrics** — consecutive-snapshot differences of degree,
  clustering, coreness (Eq. 20) and attribute MAE/RMSE (Eq. 21),
  producing the series plotted in Figures 4–8.
* **Motif metrics** — directed triad census, temporal motif transition
  dynamics and motif-profile discrepancy (:mod:`repro.metrics.motifs`),
  the substructure view Dymond models.
* **Privacy metrics** — edge/fingerprint/attribute leakage checks for
  synthetic release (:mod:`repro.metrics.privacy`), the paper's §I
  anonymization motivation made measurable.
"""

from repro.metrics.mmd import gaussian_mmd, histogram_mmd
from repro.metrics.structure import (
    average_discrepancy,
    clustering_distribution_mmd,
    degree_distribution_mmd,
    structure_metric_table,
)
from repro.metrics.attributes import (
    attribute_emd,
    attribute_jsd,
    earth_movers_distance,
    jensen_shannon_divergence,
    spearman_correlation_mae,
)
from repro.metrics.difference import (
    attribute_difference_series,
    difference_alignment_error,
    structure_difference_series,
)
from repro.metrics.extended import (
    attribute_autocorrelation,
    attribute_ks,
    attribute_structure_coupling,
    correlation_matrix_distance,
    extended_attribute_report,
    pagerank_divergence,
)
from repro.metrics.privacy import (
    attribute_nn_distance,
    degree_sequence_uniqueness,
    edge_overlap,
    expected_chance_overlap,
    privacy_report,
)
from repro.metrics.motifs import (
    TRIAD_NAMES,
    motif_count_series,
    motif_discrepancy,
    motif_persistence,
    motif_transition_matrix,
    triad_census,
)

__all__ = [
    "edge_overlap",
    "expected_chance_overlap",
    "attribute_nn_distance",
    "degree_sequence_uniqueness",
    "privacy_report",
    "TRIAD_NAMES",
    "triad_census",
    "motif_count_series",
    "motif_transition_matrix",
    "motif_persistence",
    "motif_discrepancy",
    "gaussian_mmd",
    "histogram_mmd",
    "degree_distribution_mmd",
    "clustering_distribution_mmd",
    "average_discrepancy",
    "structure_metric_table",
    "attribute_jsd",
    "attribute_emd",
    "jensen_shannon_divergence",
    "earth_movers_distance",
    "spearman_correlation_mae",
    "structure_difference_series",
    "attribute_difference_series",
    "difference_alignment_error",
    "attribute_ks",
    "attribute_autocorrelation",
    "attribute_structure_coupling",
    "correlation_matrix_distance",
    "extended_attribute_report",
    "pagerank_divergence",
]
