"""Structure metrics of Table I.

Per-snapshot distribution discrepancies (MMD on in/out degree and
clustering-coefficient distributions) averaged across aligned
timesteps, and the average percentage discrepancy of Eq. 19 applied to
power-law exponents, wedge counts, component counts and LCC size.

All per-snapshot readings go through the CSR/column views (degree
bincounts, the sparse clustering/component kernels in
:mod:`repro.graph.properties`), so scoring a store-backed generated
graph never materializes dense adjacency — asserted end-to-end by
``tests/integration/test_store_end_to_end.py``.
"""

from __future__ import annotations

from typing import Callable, Dict, List

import numpy as np

from repro.graph import DynamicAttributedGraph, GraphSnapshot
from repro.graph import properties as props
from repro.metrics.mmd import gaussian_mmd, histogram_mmd

#: metric-function registry used by Eq. 19 discrepancies
_SCALAR_METRICS: Dict[str, Callable[[GraphSnapshot], float]] = {
    "in_ple": lambda s: props.power_law_exponent(s.in_degrees()),
    "out_ple": lambda s: props.power_law_exponent(s.out_degrees()),
    "wedge_count": lambda s: float(props.wedge_count(s)),
    "nc": lambda s: float(props.component_count(s)),
    "lcc": lambda s: float(props.largest_component_size(s)),
}


def _aligned_steps(
    original: DynamicAttributedGraph, generated: DynamicAttributedGraph
) -> int:
    return min(original.num_timesteps, generated.num_timesteps)


def degree_distribution_mmd(
    original: DynamicAttributedGraph,
    generated: DynamicAttributedGraph,
    direction: str = "in",
    sigma: float = 1.0,
) -> float:
    """Mean per-timestep MMD² between degree histograms ('in' or 'out')."""
    if direction not in ("in", "out"):
        raise ValueError("direction must be 'in' or 'out'")
    getter = (
        GraphSnapshot.in_degrees if direction == "in" else GraphSnapshot.out_degrees
    )
    vals = []
    for t in range(_aligned_steps(original, generated)):
        d0 = getter(original[t]).astype(int)
        d1 = getter(generated[t]).astype(int)
        hi = int(max(d0.max(initial=0), d1.max(initial=0)))
        h0 = props.degree_histogram(d0, hi)
        h1 = props.degree_histogram(d1, hi)
        vals.append(histogram_mmd(h0, h1, sigma=sigma))
    return float(np.mean(vals))


def clustering_distribution_mmd(
    original: DynamicAttributedGraph,
    generated: DynamicAttributedGraph,
    bins: int = 20,
    sigma: float = 1.0,
) -> float:
    """Mean per-timestep MMD² between clustering-coefficient histograms."""
    vals = []
    edges = np.linspace(0.0, 1.0, bins + 1)
    for t in range(_aligned_steps(original, generated)):
        c0 = props.clustering_coefficients(original[t])
        c1 = props.clustering_coefficients(generated[t])
        h0, _ = np.histogram(c0, bins=edges)
        h1, _ = np.histogram(c1, bins=edges)
        vals.append(histogram_mmd(h0.astype(float), h1.astype(float), sigma=sigma))
    return float(np.mean(vals))


def average_discrepancy(
    original: DynamicAttributedGraph,
    generated: DynamicAttributedGraph,
    metric: str,
) -> float:
    """Eq. 19: mean_t |M(G_t) - M(G̃_t)| / M(G_t) for a scalar metric.

    Timesteps where the original metric is zero or NaN are skipped
    (the ratio is undefined there).
    """
    if metric not in _SCALAR_METRICS:
        raise KeyError(f"unknown metric {metric!r}; options: {sorted(_SCALAR_METRICS)}")
    fn = _SCALAR_METRICS[metric]
    vals = []
    for t in range(_aligned_steps(original, generated)):
        m0 = fn(original[t])
        m1 = fn(generated[t])
        if not np.isfinite(m0) or m0 == 0:
            continue
        if not np.isfinite(m1):
            m1 = 0.0
        vals.append(abs(m0 - m1) / abs(m0))
    return float(np.mean(vals)) if vals else float("nan")


def structure_metric_table(
    original: DynamicAttributedGraph, generated: DynamicAttributedGraph
) -> Dict[str, float]:
    """All eight Table I columns for one (original, generated) pair."""
    return {
        "in_deg_dist": degree_distribution_mmd(original, generated, "in"),
        "out_deg_dist": degree_distribution_mmd(original, generated, "out"),
        "clus_dist": clustering_distribution_mmd(original, generated),
        "in_ple": average_discrepancy(original, generated, "in_ple"),
        "out_ple": average_discrepancy(original, generated, "out_ple"),
        "wedge_count": average_discrepancy(original, generated, "wedge_count"),
        "nc": average_discrepancy(original, generated, "nc"),
        "lcc": average_discrepancy(original, generated, "lcc"),
    }
