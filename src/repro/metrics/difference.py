"""Consecutive-snapshot difference metrics (Eq. 20–21, Figures 4–8).

For each pair of consecutive snapshots, per-node structural properties
(degree, clustering coefficient, coreness) are differenced node-by-node
and averaged (Eq. 20); attributes are compared with MAE and RMSE
(Eq. 21).  The output is a length ``T-1`` series per metric — the lines
plotted in Figures 4–8.
"""

from __future__ import annotations

from typing import Callable, Dict, List

import numpy as np

from repro.graph import DynamicAttributedGraph, GraphSnapshot
from repro.graph import properties as props

_NODE_PROPERTIES: Dict[str, Callable[[GraphSnapshot], np.ndarray]] = {
    "degree": lambda s: s.degrees(),
    "clustering": props.clustering_coefficients,
    "coreness": lambda s: props.coreness(s).astype(np.float64),
}


def structure_difference_series(
    graph: DynamicAttributedGraph, metric: str
) -> np.ndarray:
    """Eq. 20 series: D_s(G_t, G_{t+1}) for t = 0..T-2.

    ``metric`` is one of ``degree``, ``clustering``, ``coreness``.
    """
    if metric not in _NODE_PROPERTIES:
        raise KeyError(
            f"unknown structural property {metric!r}; "
            f"options: {sorted(_NODE_PROPERTIES)}"
        )
    fn = _NODE_PROPERTIES[metric]
    values: List[float] = []
    prev = fn(graph[0])
    for t in range(1, graph.num_timesteps):
        cur = fn(graph[t])
        values.append(float(np.abs(prev - cur).mean()))
        prev = cur
    return np.asarray(values)


def attribute_difference_series(
    graph: DynamicAttributedGraph, metric: str = "mae"
) -> np.ndarray:
    """Eq. 21 series: MAE or RMSE between X_t and X_{t+1} per step.

    Multi-dimensional attributes are averaged along the attribute
    dimension, as in the paper's implementation note.
    """
    if metric not in ("mae", "rmse"):
        raise KeyError("metric must be 'mae' or 'rmse'")
    if graph.num_attributes == 0:
        raise ValueError("graph has no attributes")
    values: List[float] = []
    prev = graph[0].attributes
    for t in range(1, graph.num_timesteps):
        cur = graph[t].attributes
        diff = np.abs(prev - cur).mean(axis=1)  # average attribute dims
        if metric == "mae":
            values.append(float(diff.mean()))
        else:
            sq = ((prev - cur) ** 2).mean(axis=1)
            values.append(float(np.sqrt(sq.mean())))
        prev = cur
    return np.asarray(values)


def difference_alignment_error(
    original_series: np.ndarray, generated_series: np.ndarray
) -> float:
    """Mean absolute gap between two difference series (Fig. 4–8 summary).

    Truncates to the common length; used by benches to score how closely
    a generator's dynamics track the original's.
    """
    a = np.asarray(original_series, dtype=np.float64)
    b = np.asarray(generated_series, dtype=np.float64)
    k = min(len(a), len(b))
    if k == 0:
        return float("nan")
    return float(np.abs(a[:k] - b[:k]).mean())
