"""Maximum Mean Discrepancy estimators.

The paper follows CPGAN [58] in comparing degree / clustering
distributions with MMD.  Two estimators are provided:

* :func:`gaussian_mmd` — biased V-statistic MMD² with an RBF kernel on
  raw samples.
* :func:`histogram_mmd` — MMD² between two normalized histograms under
  a Gaussian kernel on the bin grid (the standard GraphRNN-style
  implementation for integer-valued distributions such as degrees).
"""

from __future__ import annotations

import numpy as np


def gaussian_mmd(x: np.ndarray, y: np.ndarray, sigma: float = 1.0) -> float:
    """Biased MMD² between samples ``x`` and ``y`` with an RBF kernel.

    Always >= 0 (up to float error, clamped), 0 iff identical samples.
    """
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    if len(x) == 0 or len(y) == 0:
        return float("nan")
    x = x.reshape(len(x), -1)
    y = y.reshape(len(y), -1)

    def kernel(a: np.ndarray, b: np.ndarray) -> np.ndarray:
        sq = ((a[:, None, :] - b[None, :, :]) ** 2).sum(-1)
        return np.exp(-sq / (2.0 * sigma**2))

    kxx = kernel(x, x).mean()
    kyy = kernel(y, y).mean()
    kxy = kernel(x, y).mean()
    return float(max(kxx + kyy - 2.0 * kxy, 0.0))


def histogram_mmd(p: np.ndarray, q: np.ndarray, sigma: float = 1.0) -> float:
    """MMD² between two discrete distributions on a shared integer grid.

    ``p`` and ``q`` are histogram probability vectors (padded to equal
    length); the kernel is Gaussian in the bin index.
    """
    p = np.asarray(p, dtype=np.float64)
    q = np.asarray(q, dtype=np.float64)
    size = max(len(p), len(q))
    if size == 0:
        return float("nan")
    p = np.pad(p, (0, size - len(p)))
    q = np.pad(q, (0, size - len(q)))
    sp, sq = p.sum(), q.sum()
    if sp > 0:
        p = p / sp
    if sq > 0:
        q = q / sq
    grid = np.arange(size, dtype=np.float64)
    k = np.exp(-((grid[:, None] - grid[None, :]) ** 2) / (2.0 * sigma**2))
    diff = p - q
    return float(max(diff @ k @ diff, 0.0))
