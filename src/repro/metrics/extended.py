"""Extended node-attribute metrics (paper Appendix A-C).

The main text reports JSD/EMD and Spearman-correlation MAE; the
appendix adds finer-grained attribute diagnostics.  This module
provides the standard set a practitioner wants when validating a
generated attributed sequence:

* :func:`ks_statistic` / :func:`attribute_ks` — Kolmogorov–Smirnov
  distance per attribute marginal.
* :func:`attribute_autocorrelation` — lag-1 temporal autocorrelation of
  node attributes (does the generator preserve how *sticky* attributes
  are over time?).
* :func:`correlation_matrix_distance` — Frobenius distance between
  Pearson correlation matrices.
* :func:`attribute_structure_coupling` — correlation between node
  degree and attribute values, the simplest observable footprint of
  topology/attribute co-evolution.
* :func:`pagerank_divergence` — mean per-timestep KS distance between
  PageRank score distributions, a centrality-level structural check
  beyond degree distributions.
"""

from __future__ import annotations

from typing import Dict

import numpy as np
from scipy import stats

from repro.graph import DynamicAttributedGraph, properties


def ks_statistic(a: np.ndarray, b: np.ndarray) -> float:
    """Two-sample Kolmogorov–Smirnov statistic in [0, 1]."""
    result = stats.ks_2samp(np.ravel(a), np.ravel(b))
    return float(result.statistic)


def attribute_ks(
    original: DynamicAttributedGraph, generated: DynamicAttributedGraph
) -> float:
    """Mean per-timestep, per-dimension KS distance of attribute marginals."""
    if original.num_attributes == 0:
        return float("nan")
    steps = min(original.num_timesteps, generated.num_timesteps)
    vals = []
    for t in range(steps):
        for j in range(original.num_attributes):
            vals.append(
                ks_statistic(
                    original[t].attributes[:, j], generated[t].attributes[:, j]
                )
            )
    return float(np.mean(vals))


def attribute_autocorrelation(graph: DynamicAttributedGraph) -> float:
    """Mean lag-1 autocorrelation of per-node attribute trajectories.

    High values mean attributes are persistent over time (the typical
    real-world regime); a generator producing temporally-independent
    snapshots scores near zero.
    """
    if graph.num_attributes == 0:
        raise ValueError("graph has no attributes")
    if graph.num_timesteps < 2:
        raise ValueError("need at least 2 timesteps")
    x = graph.attribute_tensor()  # (T, N, F)
    prev = x[:-1].reshape(-1)
    nxt = x[1:].reshape(-1)
    if prev.std() < 1e-12 or nxt.std() < 1e-12:
        return 0.0
    return float(np.corrcoef(prev, nxt)[0, 1])


def correlation_matrix_distance(
    original: DynamicAttributedGraph, generated: DynamicAttributedGraph
) -> float:
    """Mean Frobenius distance between per-timestep Pearson correlation
    matrices of the attributes."""
    f = original.num_attributes
    if f < 2:
        raise ValueError("need at least 2 attributes")
    steps = min(original.num_timesteps, generated.num_timesteps)
    vals = []
    for t in range(steps):
        c0 = _pearson(original[t].attributes)
        c1 = _pearson(generated[t].attributes)
        vals.append(float(np.linalg.norm(c0 - c1)))
    return float(np.mean(vals))


def attribute_structure_coupling(graph: DynamicAttributedGraph) -> float:
    """Mean |corr(degree, attribute)| across timesteps and dimensions.

    Non-zero values witness topology/attribute coupling; comparing the
    original's and a generator's coupling quantifies how much of the
    co-evolution footprint survived generation.
    """
    if graph.num_attributes == 0:
        raise ValueError("graph has no attributes")
    vals = []
    for snap in graph:
        deg = snap.degrees()
        if deg.std() < 1e-12:
            continue
        for j in range(snap.num_attributes):
            col = snap.attributes[:, j]
            if col.std() < 1e-12:
                continue
            vals.append(abs(float(np.corrcoef(deg, col)[0, 1])))
    return float(np.mean(vals)) if vals else 0.0


def pagerank_divergence(
    original: DynamicAttributedGraph,
    generated: DynamicAttributedGraph,
    damping: float = 0.85,
) -> float:
    """Mean per-timestep KS distance between PageRank distributions.

    Degree distributions are local; PageRank summarizes global message
    flow, the property the paper's bi-flow encoder targets.  Compared
    over the shorter of the two sequences.
    """
    steps = min(original.num_timesteps, generated.num_timesteps)
    vals = [
        ks_statistic(
            properties.pagerank(original[t], damping=damping),
            properties.pagerank(generated[t], damping=damping),
        )
        for t in range(steps)
    ]
    return float(np.mean(vals)) if vals else float("nan")


def extended_attribute_report(
    original: DynamicAttributedGraph, generated: DynamicAttributedGraph
) -> Dict[str, float]:
    """All appendix metrics in one dict (original-vs-generated)."""
    report = {
        "ks": attribute_ks(original, generated),
        "autocorr_original": attribute_autocorrelation(original),
        "autocorr_generated": attribute_autocorrelation(generated),
        "coupling_original": attribute_structure_coupling(original),
        "coupling_generated": attribute_structure_coupling(generated),
        "pagerank_divergence": pagerank_divergence(original, generated),
    }
    if original.num_attributes >= 2:
        report["corr_matrix_dist"] = correlation_matrix_distance(
            original, generated
        )
    return report


def _pearson(x: np.ndarray) -> np.ndarray:
    with np.errstate(divide="ignore", invalid="ignore"):
        c = np.corrcoef(x, rowvar=False)
    c = np.atleast_2d(c)
    return np.nan_to_num(c, nan=0.0)
