"""Live query serving: request batches pinned to epoch snapshots.

:class:`LiveQueryService` closes the gap between
:class:`~repro.workloads.service.QueryService` (frozen snapshots) and
:class:`~repro.graph.live.LiveStoreBuilder` (ingestion): a writer
keeps sealing timesteps while readers run query batches, and **each
request batch is answered against a single pinned epoch** — the
freshest sealed snapshot at batch start.  The consistency contract is
the builder's (``docs/workloads.md``): results at epoch E are
bit-identical to the same queries against a bulk-built store of E's
sealed events, regardless of concurrent ingestion.

One plan cache across every epoch
---------------------------------
Sealed timesteps are immutable, so their CSR/CSC/attribute plans are
valid *forever* — rebuilding them per epoch would discard exactly the
residency a serving cache exists for.  The service therefore shares
one :class:`~repro.workloads.cache.SnapshotPlanCache` across epochs
and gives each epoch's engine an :class:`EpochPlanView`, which routes
lookups by how the underlying data can change:

* **Sealed timesteps** (``t < epoch``) use the ordinary per-timestep
  keys (``("csr", t)``, ...) — content-stable across epochs, shared
  by every view, never invalidated.
* **Open timesteps** (``t >= epoch``, empty at this epoch) use
  ``("csr", t, "open")``-style keys, built from the view's own
  snapshot.  When timestep ``t`` seals, the service calls
  :meth:`~repro.workloads.cache.SnapshotPlanCache.invalidate_step`
  for it — the open plans are stale for the new epoch.  An in-flight
  older batch that still needs them simply rebuilds from its pinned
  snapshot (invalidation never changes results).
* **Whole-store plans** (the sorted edge-key columns) depend on every
  sealed event, so they are keyed per epoch and dropped wholesale via
  :meth:`~repro.workloads.cache.SnapshotPlanCache.invalidate_store_plans`
  on each advance.
* **Attribute plans** are epoch-independent (the live builder fixes
  the attribute block up front) and always use the shared keys.

Reliability (``docs/reliability.md``): deadlines, retries and
admission ride the wrapped ``QueryService`` unchanged.  A faulting
refresh (the ``live.snapshot`` injection point) degrades to serving
the previous epoch — a staleness event, never an error — and is
counted in :class:`LiveServiceStats`; a faulting seal
(``live.advance_epoch``) is the writer's to retry, and leaves the
builder unchanged.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.graph.dynamic import DynamicAttributedGraph
from repro.graph.live import LiveStoreBuilder
from repro.graph.store import TemporalEdgeStore
from repro.reliability import RetryPolicy
from repro.workloads.cache import PlanCacheStats, SnapshotPlanCache
from repro.workloads.engine import GraphQueryEngine
from repro.workloads.service import QueryRequest, QueryResult, QueryService

__all__ = ["EpochPlanView", "LiveQueryService", "LiveServiceStats"]


class EpochPlanView:
    """Plan-protocol adapter pinning one epoch over a shared cache.

    Quacks like a :class:`SnapshotPlanCache` to a
    :class:`GraphQueryEngine` (``store`` + the five plan methods +
    ``stats``), but routes each lookup through the *shared* cache with
    epoch-aware keys — see the module docstring for the key scheme.
    Correctness does not depend on what is resident: every build
    closure reads from this view's own immutable snapshot (open steps,
    whole-store plans) or from content that is bit-equal in every
    store that can be bound to the shared cache (sealed steps), so
    eviction and invalidation at any moment only cost a rebuild.
    """

    __slots__ = ("shared", "store", "epoch")

    def __init__(
        self,
        shared: SnapshotPlanCache,
        store: TemporalEdgeStore,
        epoch: int,
    ):
        self.shared = shared
        self.store = store
        self.epoch = int(epoch)

    # -- per-timestep plans -------------------------------------------
    def csr(self, t: int):
        if t < self.epoch:
            return self.shared.csr(t)
        store = self.store

        def build():
            indptr, indices = store.compute_csr_at(t)
            owned = SnapshotPlanCache._owned_nbytes(indptr, indices)
            return (indptr, indices), owned

        return self.shared.get_or_build(("csr", t, "open"), build)

    def csc(self, t: int):
        if t < self.epoch:
            return self.shared.csc(t)
        store = self.store

        def build():
            indptr, indices = store.compute_csc_at(t)
            owned = SnapshotPlanCache._owned_nbytes(indptr, indices)
            return (indptr, indices), owned

        return self.shared.get_or_build(("csc", t, "open"), build)

    def attribute_order(self, t: int, dim: int):
        # the attribute block is fixed at builder construction, so the
        # shared per-(t, dim) plan is valid at every epoch
        return self.shared.attribute_order(t, dim)

    # -- whole-store plans (epoch-keyed) ------------------------------
    def temporal_keys(self):
        store = self.store

        def build():
            keys = store.temporal_edge_keys()
            return keys, SnapshotPlanCache._owned_nbytes(keys)

        return self.shared.get_or_build(("temporal_keys", self.epoch), build)

    def pair_keys(self):
        store = self.store

        def build():
            keys = np.sort(
                (store.src * store.num_nodes + store.dst)
                * store.num_timesteps
                + store.t
            )
            return keys, SnapshotPlanCache._owned_nbytes(keys)

        return self.shared.get_or_build(("pair_keys", self.epoch), build)

    # -----------------------------------------------------------------
    def stats(self) -> PlanCacheStats:
        return self.shared.stats()

    def __repr__(self) -> str:
        return f"EpochPlanView(epoch={self.epoch}, shared={self.shared!r})"


@dataclass(frozen=True)
class LiveServiceStats:
    """Point-in-time refresh counters of one :class:`LiveQueryService`.

    ``epoch`` is the currently pinned epoch; ``refreshes`` counts
    successful :meth:`~LiveQueryService.refresh` calls (including
    no-op ones at an unchanged epoch); ``epoch_advances`` counts the
    ones that actually moved the pinned epoch; ``stale_refreshes``
    counts refreshes that faulted (``live.snapshot``) and degraded to
    serving the previous epoch.
    """

    epoch: int
    refreshes: int
    epoch_advances: int
    stale_refreshes: int


class LiveQueryService:
    """Serve query batches against a :class:`LiveStoreBuilder`.

    Parameters mirror :class:`~repro.workloads.service.QueryService`
    (``executor`` serial/thread, ``max_workers``, ``batched``,
    ``retry_policy``, ``deadline_seconds``, ``max_pending``);
    ``cache_memory_budget_bytes`` / ``cache_max_plans`` size the one
    plan cache shared across every epoch.

    :meth:`run_batch` refreshes to the freshest sealed epoch, pins it,
    and returns ``(epoch, results)`` — so a caller can always name the
    exact event prefix its answers describe (and verify them against a
    bulk-built store of that prefix, as the CLI's
    ``--verify-bulk-equivalence`` does).
    """

    def __init__(
        self,
        builder: LiveStoreBuilder,
        *,
        executor: str = "thread",
        max_workers: Optional[int] = None,
        cache_memory_budget_bytes: Optional[int] = None,
        cache_max_plans: Optional[int] = None,
        batched: bool = True,
        retry_policy: Optional[RetryPolicy] = None,
        deadline_seconds: Optional[float] = None,
        max_pending: Optional[int] = None,
    ):
        self.builder = builder
        # construction is not a degradable refresh: a faulting first
        # snapshot fails loudly here instead of serving nothing
        epoch, store = builder.snapshot()
        self._cache = SnapshotPlanCache(
            store,
            memory_budget_bytes=cache_memory_budget_bytes,
            max_plans=cache_max_plans,
        )
        self._swap = threading.Lock()
        self._epoch = epoch
        self._engine = self._make_engine(store, epoch)
        self._refreshes = 0
        self._epoch_advances = 0
        self._stale_refreshes = 0
        self._service = QueryService(
            self._engine,
            executor=executor,
            max_workers=max_workers,
            batched=batched,
            retry_policy=retry_policy,
            deadline_seconds=deadline_seconds,
            max_pending=max_pending,
        )

    def _make_engine(
        self, store: TemporalEdgeStore, epoch: int
    ) -> GraphQueryEngine:
        view = EpochPlanView(self._cache, store, epoch)
        return GraphQueryEngine(
            DynamicAttributedGraph.from_store(store), plan_cache=view
        )

    # ------------------------------------------------------------------
    @property
    def epoch(self) -> int:
        """The currently pinned epoch."""
        with self._swap:
            return self._epoch

    def refresh(self) -> int:
        """Advance to the builder's freshest sealed epoch; returns it.

        On advance, plans for the newly sealed timesteps and the
        whole-store edge-key plans are invalidated in the shared cache
        before the new epoch's engine is published — batches already
        in flight keep their pinned engines and stay bit-exact at
        their epoch.  A faulting snapshot (``live.snapshot``) degrades
        to the previous epoch (staleness, not failure) and is counted
        in :meth:`live_stats`.
        """
        try:
            epoch, store = self.builder.snapshot()
        except Exception:
            with self._swap:
                self._stale_refreshes += 1
                return self._epoch
        with self._swap:
            self._refreshes += 1
            if epoch == self._epoch:
                return self._epoch
            for t in range(self._epoch, epoch):
                self._cache.invalidate_step(t)
            self._cache.invalidate_store_plans()
            # rebind so shared sealed-step plans build from a store
            # that has them; monotone, content-equal for sealed steps
            self._cache.store = store
            self._engine = self._make_engine(store, epoch)
            self._epoch = epoch
            self._epoch_advances += 1
            return epoch

    def run_batch(
        self,
        requests: Sequence[QueryRequest],
        *,
        refresh: bool = True,
    ) -> Tuple[int, List[QueryResult]]:
        """Execute a request batch against one pinned epoch.

        Returns ``(epoch, results)`` with results in request order —
        the :class:`~repro.workloads.service.QueryService` contract
        (per-request failures as structured values, admission
        overflow raised) at a named epoch.  ``refresh=False`` skips
        the epoch advance and serves whatever is currently pinned.
        """
        if refresh:
            self.refresh()
        with self._swap:
            epoch, engine = self._epoch, self._engine
        return epoch, self._service.run_batch(requests, engine=engine)

    # ------------------------------------------------------------------
    def live_stats(self) -> LiveServiceStats:
        """Epoch/refresh counters (see :class:`LiveServiceStats`)."""
        with self._swap:
            return LiveServiceStats(
                epoch=self._epoch,
                refreshes=self._refreshes,
                epoch_advances=self._epoch_advances,
                stale_refreshes=self._stale_refreshes,
            )

    def plan_cache_stats(self) -> PlanCacheStats:
        """Counters of the one cache shared across every epoch."""
        return self._cache.stats()

    def admission_stats(self):
        """Pending/admitted/shed counters of the bounded queue."""
        return self._service.admission_stats()

    def close(self) -> None:
        """Shut down the wrapped service's pool (no-op for serial)."""
        self._service.close()

    def __enter__(self) -> "LiveQueryService":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
