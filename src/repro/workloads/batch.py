"""Batched execution of workload query mixes.

:func:`execute_workload` (in :mod:`repro.workloads.generator`)
dispatches one Python call per query — the reference semantics.  This
module is the bulk twin: a mixed workload is grouped by query class,
each batchable class is answered with **one** vectorized kernel call
(:meth:`~repro.workloads.engine.GraphQueryEngine.batch_degrees`,
:meth:`~repro.workloads.engine.GraphQueryEngine.batch_has_edge`,
:meth:`~repro.workloads.engine.GraphQueryEngine.batch_edge_window_counts`,
:meth:`~repro.workloads.engine.GraphQueryEngine.batch_two_hop`,
:meth:`~repro.workloads.engine.GraphQueryEngine.batch_temporal_reach`),
and only the per-snapshot analytics classes (``TRIANGLE_COUNT``,
``DEGREE_TOPK`` — one whole-snapshot kernel per query by nature) fall
back to the per-query path.  Result cardinalities are bit-identical
to the per-query loop in query order — only the dispatch cost
changes.

This is the execution core of
:class:`~repro.workloads.service.QueryService`; it is also usable
directly for single-threaded bulk replay.

**Graceful degradation** (``docs/reliability.md``): the batched
kernels are an optimization, and the per-query dispatch is their
pinned reference twin — so a kernel failure is recoverable, not
fatal.  :func:`run_queries_resilient` catches a faulting batched
kernel (the ``query.batch_kernel`` injection point provokes this in
chaos tests) and answers that query class through the per-query loop
instead: identical results, degraded throughput, and the degradation
is reported so operators can see it happening.
"""

from __future__ import annotations

from time import perf_counter
from typing import Dict, FrozenSet, List, Sequence, Tuple

import numpy as np

from repro.reliability import fault_injector
from repro.workloads.engine import GraphQueryEngine
from repro.workloads.generator import (
    Query,
    QueryKind,
    WorkloadReport,
    _run_query,
)

__all__ = [
    "BATCHED_KINDS",
    "run_queries_batched",
    "run_queries_resilient",
    "execute_workload_batched",
]

#: Query classes answered by a vectorized kernel.  Only the
#: per-snapshot analytics classes (``TRIANGLE_COUNT``,
#: ``DEGREE_TOPK``) take the per-query fallback inside
#: :func:`run_queries_batched` — each of those is one whole-snapshot
#: kernel per query by nature, so there is no batch to vectorize.
BATCHED_KINDS = frozenset(
    {
        QueryKind.OUT_NEIGHBORS,
        QueryKind.IN_NEIGHBORS,
        QueryKind.HAS_EDGE,
        QueryKind.EDGE_WINDOW,
        QueryKind.ATTRIBUTE_RANGE,
        QueryKind.TWO_HOP,
        QueryKind.TEMPORAL_REACH,
    }
)


def _dispatch_kind(
    engine: GraphQueryEngine, kind: QueryKind, group: List[Query]
) -> np.ndarray:
    """Cardinalities of one query-class group, via its batched kernel."""
    fault_injector.fire("query.batch_kernel", key=kind.value)
    if kind in (QueryKind.OUT_NEIGHBORS, QueryKind.IN_NEIGHBORS):
        nodes = np.fromiter((q.args[0] for q in group), np.int64, len(group))
        ts = np.fromiter((q.t for q in group), np.int64, len(group))
        direction = "out" if kind == QueryKind.OUT_NEIGHBORS else "in"
        return engine.batch_degrees(nodes, ts, direction)
    if kind == QueryKind.HAS_EDGE:
        src = np.fromiter((q.args[0] for q in group), np.int64, len(group))
        dst = np.fromiter((q.args[1] for q in group), np.int64, len(group))
        ts = np.fromiter((q.t for q in group), np.int64, len(group))
        return engine.batch_has_edge(src, dst, ts).astype(np.int64)
    if kind == QueryKind.EDGE_WINDOW:
        src = np.fromiter((q.args[0] for q in group), np.int64, len(group))
        dst = np.fromiter((q.args[1] for q in group), np.int64, len(group))
        t0 = np.fromiter((q.args[2] for q in group), np.int64, len(group))
        t1 = np.fromiter((q.args[3] for q in group), np.int64, len(group))
        return engine.batch_edge_window_counts(src, dst, t0, t1)
    if kind == QueryKind.ATTRIBUTE_RANGE:
        ts = np.fromiter((q.t for q in group), np.int64, len(group))
        dims = np.fromiter((q.args[0] for q in group), np.int64, len(group))
        lo = np.fromiter((q.args[1] for q in group), np.float64, len(group))
        hi = np.fromiter((q.args[2] for q in group), np.float64, len(group))
        return engine.batch_attribute_range_counts(ts, dims, lo, hi)
    if kind == QueryKind.TWO_HOP:
        nodes = np.fromiter((q.args[0] for q in group), np.int64, len(group))
        ks = np.fromiter((q.args[1] for q in group), np.int64, len(group))
        ts = np.fromiter((q.t for q in group), np.int64, len(group))
        return engine.batch_two_hop(nodes, ts, ks)
    if kind == QueryKind.TEMPORAL_REACH:
        src = np.fromiter((q.args[0] for q in group), np.int64, len(group))
        dst = np.fromiter((q.args[1] for q in group), np.int64, len(group))
        t0 = np.fromiter((q.args[2] for q in group), np.int64, len(group))
        t1 = np.fromiter((q.args[3] for q in group), np.int64, len(group))
        return engine.batch_temporal_reach(src, dst, t0, t1).astype(np.int64)
    raise AssertionError(kind)  # pragma: no cover - guarded by caller


def _run_grouped(
    engine: GraphQueryEngine,
    queries: Sequence[Query],
    degrade: bool,
) -> Tuple[np.ndarray, Dict[str, float], FrozenSet[str]]:
    """Grouped execution core shared by the strict and resilient paths."""
    cardinalities = np.zeros(len(queries), dtype=np.int64)
    seconds: Dict[str, float] = {}
    degraded: List[str] = []
    groups: Dict[QueryKind, List[int]] = {}
    for i, q in enumerate(queries):
        groups.setdefault(q.kind, []).append(i)
    for kind, indices in groups.items():
        start = perf_counter()
        if kind in BATCHED_KINDS:
            group = [queries[i] for i in indices]
            try:
                cardinalities[indices] = _dispatch_kind(engine, kind, group)
            except Exception:
                if not degrade:
                    raise
                # batched kernel faulted: fall back to its pinned
                # per-query reference twin — identical results,
                # degraded throughput
                degraded.append(kind.value)
                for i in indices:
                    cardinalities[i] = _run_query(engine, queries[i])
        else:
            for i in indices:
                cardinalities[i] = _run_query(engine, queries[i])
        seconds[kind.value] = seconds.get(kind.value, 0.0) + (
            perf_counter() - start
        )
    return cardinalities, seconds, frozenset(degraded)


def run_queries_batched(
    engine: GraphQueryEngine, queries: Sequence[Query]
) -> Tuple[np.ndarray, Dict[str, float]]:
    """Execute a query mix in bulk; cardinalities come back in query order.

    Returns ``(cardinalities, seconds_by_kind)``: one int64 result
    cardinality per query (bit-identical to looping
    ``execute_workload``'s per-query dispatch — pinned by
    ``tests/workloads/test_batch.py``) and the wall-clock each query
    class consumed (batched classes are timed per kernel call, the
    fallback classes per query).  A batched-kernel failure propagates;
    use :func:`run_queries_resilient` for the degrade-don't-die form.
    """
    cardinalities, seconds, _ = _run_grouped(engine, queries, degrade=False)
    return cardinalities, seconds


def run_queries_resilient(
    engine: GraphQueryEngine, queries: Sequence[Query]
) -> Tuple[np.ndarray, Dict[str, float], FrozenSet[str]]:
    """Degrading twin of :func:`run_queries_batched`.

    Identical cardinalities, but a query class whose batched kernel
    raises is re-answered through the per-query reference dispatch
    instead of failing the request.  Returns ``(cardinalities,
    seconds_by_kind, degraded_kinds)`` where ``degraded_kinds`` names
    the classes that fell back (empty in the fault-free case).
    """
    return _run_grouped(engine, queries, degrade=True)


def execute_workload_batched(
    engine: GraphQueryEngine, queries: Sequence[Query]
) -> WorkloadReport:
    """Batched twin of :func:`~repro.workloads.generator.execute_workload`.

    Same report shape and the same per-class result cardinalities;
    ``latency_by_kind`` amortizes each class's batched wall-clock over
    its query count (the number a serving operator compares against
    the per-query dispatch profile).  Raises ``ValueError`` on an
    empty workload, matching the per-query executor.
    """
    if not queries:
        raise ValueError("empty workload")
    start = perf_counter()
    cardinalities, seconds = run_queries_batched(engine, queries)
    total = perf_counter() - start
    counts: Dict[str, int] = {}
    sizes: Dict[str, float] = {}
    for q, card in zip(queries, cardinalities.tolist()):
        key = q.kind.value
        counts[key] = counts.get(key, 0) + 1
        sizes[key] = sizes.get(key, 0.0) + card
    return WorkloadReport(
        total_queries=len(queries),
        total_seconds=total,
        latency_by_kind={k: seconds[k] / counts[k] for k in counts},
        count_by_kind=counts,
        mean_result_size={k: sizes[k] / counts[k] for k in counts},
    )
