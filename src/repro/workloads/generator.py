"""Workload generation and execution over the query engine.

Mirrors how graph-DB benchmarks are specified: a *mix* of query
classes with weights, Zipf-skewed node selection (real workloads
hammer hub entities), and timestep selection biased toward recent
snapshots.  A :class:`WorkloadGenerator` draws a deterministic query
sequence against a specific graph's degree profile; the sequence can
then be executed three ways, all producing identical per-query result
cardinalities:

* :func:`execute_workload` — one Python call per query (the reference
  dispatch path), returning the per-class latency / cardinality
  profile a vendor compares between the customer's private graph and
  its synthetic twin;
* :func:`~repro.workloads.batch.execute_workload_batched` — the same
  mix answered through the batched vectorized kernels;
* :class:`~repro.workloads.service.QueryService` — the mix split into
  request batches and served over a concurrent executor pool.

See ``docs/workloads.md`` for the query model and the guarantees
connecting the three paths.
"""

from __future__ import annotations

import enum
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.workloads.engine import GraphQueryEngine


class QueryKind(enum.Enum):
    """The benchmark query classes.

    ``EDGE_WINDOW`` (how many snapshots of ``[t0, t1]`` contain an
    edge) is the temporal-range class served by the batched
    ``searchsorted`` kernel; it is not part of the default OLTP mix
    but is included in serving-oriented mixes such as
    :func:`serving_mix`.

    Every kind except ``TRIANGLE_COUNT`` and ``DEGREE_TOPK`` has a
    batched vectorized kernel (``BATCHED_KINDS`` in
    :mod:`repro.workloads.batch`); the traversal kinds ``TWO_HOP``
    and ``TEMPORAL_REACH`` ride the frontier-vectorized multi-source
    BFS kernels.  The two analytics kinds are *documented fallbacks*:
    each one is a whole-snapshot kernel per query by nature, so they
    always take the per-query path in batched execution.
    """

    OUT_NEIGHBORS = "out_neighbors"
    IN_NEIGHBORS = "in_neighbors"
    HAS_EDGE = "has_edge"
    TWO_HOP = "two_hop"
    TRIANGLE_COUNT = "triangle_count"
    ATTRIBUTE_RANGE = "attribute_range"
    DEGREE_TOPK = "degree_topk"
    TEMPORAL_REACH = "temporal_reach"
    EDGE_WINDOW = "edge_window"


@dataclass(frozen=True)
class Query:
    """One generated query instance.

    ``t`` is the primary snapshot the query touches (for window
    queries, the window start); ``args`` are the kind-specific
    positional arguments consumed by the executors.
    """

    kind: QueryKind
    t: int
    args: Tuple


def serving_mix() -> Dict[QueryKind, float]:
    """A point-lookup-heavy mix shaped like high-QPS serving traffic.

    Every class in it has a batched kernel — the mix the throughput
    benches and the ``bench-queries`` CLI default to.  The default
    :class:`WorkloadConfig` mix instead mirrors an analytics-leaning
    OLTP profile with traversals and pattern counts; since the
    frontier-vectorized traversal kernels landed, its ``TWO_HOP`` and
    ``TEMPORAL_REACH`` queries are batched too, leaving only the
    analytics kinds (``TRIANGLE_COUNT``, ``DEGREE_TOPK`` — 7% of the
    default mix) on the per-query path.
    """
    return {
        QueryKind.OUT_NEIGHBORS: 0.30,
        QueryKind.IN_NEIGHBORS: 0.20,
        QueryKind.HAS_EDGE: 0.30,
        QueryKind.EDGE_WINDOW: 0.10,
        QueryKind.ATTRIBUTE_RANGE: 0.10,
    }


@dataclass
class WorkloadConfig:
    """Workload shape.

    ``mix`` maps query kinds to relative weights (normalized
    internally).  ``zipf_s`` controls node-selection skew (1.0 ≈ web
    workloads; 0 = uniform).  ``recent_bias`` in [0, 1) biases timestep
    choice toward the latest snapshots (0 = uniform over time).
    ``topk`` is the ``k`` of DEGREE_TOPK queries and
    ``range_width_quantile`` the width (as a quantile span) of
    ATTRIBUTE_RANGE scans.  ``seed`` makes the drawn sequence
    deterministic.
    """

    num_queries: int = 1000
    mix: Dict[QueryKind, float] = field(
        default_factory=lambda: {
            QueryKind.OUT_NEIGHBORS: 0.30,
            QueryKind.IN_NEIGHBORS: 0.15,
            QueryKind.HAS_EDGE: 0.20,
            QueryKind.TWO_HOP: 0.15,
            QueryKind.ATTRIBUTE_RANGE: 0.10,
            QueryKind.DEGREE_TOPK: 0.05,
            QueryKind.TRIANGLE_COUNT: 0.02,
            QueryKind.TEMPORAL_REACH: 0.03,
        }
    )
    zipf_s: float = 1.0
    recent_bias: float = 0.5
    topk: int = 10
    range_width_quantile: float = 0.25
    seed: int = 0

    def validate(self) -> None:
        """Raise ``ValueError`` on inconsistent settings."""
        if self.num_queries < 1:
            raise ValueError("num_queries must be >= 1")
        if not self.mix:
            raise ValueError("mix must not be empty")
        if any(w < 0 for w in self.mix.values()) or sum(self.mix.values()) <= 0:
            raise ValueError("mix weights must be non-negative with positive sum")
        if self.zipf_s < 0:
            raise ValueError("zipf_s must be >= 0")
        if not 0.0 <= self.recent_bias < 1.0:
            raise ValueError("recent_bias must be in [0, 1)")
        if not 0.0 < self.range_width_quantile <= 1.0:
            raise ValueError("range_width_quantile must be in (0, 1]")


class WorkloadGenerator:
    """Draws query instances against a specific graph profile.

    Node popularity ranks follow the graph's time-pooled total degree,
    so the Zipf head lands on actual hubs (as it does in production).
    The drawn sequence is a pure function of ``(graph, config)`` —
    :meth:`generate` is deterministic per seed, which is what lets the
    serving layer promise bit-identical replay regardless of batch
    split or executor.
    """

    def __init__(self, graph, config: Optional[WorkloadConfig] = None):
        self.graph = graph
        self.config = config or WorkloadConfig()
        self.config.validate()
        deg = np.zeros(graph.num_nodes)
        for snap in graph:
            deg += snap.degrees()
        self._popularity_rank = np.argsort(-deg, kind="stable")

    # ------------------------------------------------------------------
    def _node_probs(self) -> np.ndarray:
        n = self.graph.num_nodes
        ranks = np.arange(1, n + 1, dtype=float)
        weights = ranks ** -self.config.zipf_s
        probs = np.zeros(n)
        probs[self._popularity_rank] = weights / weights.sum()
        return probs

    def _time_probs(self) -> np.ndarray:
        t_len = self.graph.num_timesteps
        bias = self.config.recent_bias
        weights = (1.0 - bias) ** np.arange(t_len - 1, -1, -1, dtype=float)
        return weights / weights.sum()

    def generate(self) -> List[Query]:
        """Draw ``num_queries`` query instances (deterministic per seed)."""
        cfg = self.config
        rng = np.random.default_rng(cfg.seed)
        kinds = list(cfg.mix)
        kind_p = np.array([cfg.mix[k] for k in kinds], dtype=float)
        kind_p /= kind_p.sum()
        node_p = self._node_probs()
        time_p = self._time_probs()
        n = self.graph.num_nodes
        t_len = self.graph.num_timesteps
        f = self.graph.num_attributes
        queries: List[Query] = []
        for _ in range(cfg.num_queries):
            kind = kinds[int(rng.choice(len(kinds), p=kind_p))]
            t = int(rng.choice(t_len, p=time_p))
            if kind in (QueryKind.OUT_NEIGHBORS, QueryKind.IN_NEIGHBORS):
                args = (int(rng.choice(n, p=node_p)),)
            elif kind == QueryKind.HAS_EDGE:
                args = (
                    int(rng.choice(n, p=node_p)),
                    int(rng.choice(n, p=node_p)),
                )
            elif kind == QueryKind.TWO_HOP:
                args = (int(rng.choice(n, p=node_p)), 2)
            elif kind == QueryKind.TRIANGLE_COUNT:
                args = ()
            elif kind == QueryKind.ATTRIBUTE_RANGE:
                if f == 0:
                    continue  # attribute-free graph: skip this class
                dim = int(rng.integers(0, f))
                values = self.graph[t].attributes[:, dim]
                lo = float(np.quantile(values, rng.uniform(0, 1 - cfg.range_width_quantile)))
                hi = lo + cfg.range_width_quantile * float(
                    values.max() - values.min() + 1e-9
                )
                args = (dim, lo, hi)
            elif kind == QueryKind.DEGREE_TOPK:
                args = (cfg.topk,)
            elif kind in (QueryKind.TEMPORAL_REACH, QueryKind.EDGE_WINDOW):
                t0 = int(rng.choice(t_len, p=time_p))
                t1 = int(rng.integers(t0, t_len))
                args = (
                    int(rng.choice(n, p=node_p)),
                    int(rng.choice(n, p=node_p)),
                    t0,
                    t1,
                )
                t = t0
            else:  # pragma: no cover - enum is closed
                raise AssertionError(kind)
            queries.append(Query(kind=kind, t=t, args=args))
        return queries


@dataclass
class WorkloadReport:
    """Per-class execution profile of one workload run.

    Fields
    ------
    ``total_queries``:
        Queries executed (the workload size after any skipped classes).
    ``total_seconds``:
        Wall-clock of the whole run; for concurrent service runs this
        is the *batch* wall-clock, so :meth:`throughput` reflects the
        pool, not the per-query sum.
    ``latency_by_kind``:
        Mean seconds per query, per query class.  Batched executors
        amortize each kernel call over its group, so this stays
        comparable with the per-query dispatch profile.
    ``count_by_kind``:
        Queries executed per class.
    ``mean_result_size``:
        Mean result cardinality per class — identical across the
        per-query, batched and service execution paths (latency
        columns are the only thing dispatch may change).
    """

    total_queries: int
    total_seconds: float
    latency_by_kind: Dict[str, float]
    count_by_kind: Dict[str, int]
    mean_result_size: Dict[str, float]

    def throughput(self) -> float:
        """Queries per second over the whole run."""
        if self.total_seconds == 0:
            return float("inf")
        return self.total_queries / self.total_seconds


def _run_query(engine: GraphQueryEngine, q: Query) -> int:
    """Execute one query via the per-query path; returns the cardinality."""
    if q.kind == QueryKind.OUT_NEIGHBORS:
        return len(engine.out_neighbors(q.args[0], q.t))
    if q.kind == QueryKind.IN_NEIGHBORS:
        return len(engine.in_neighbors(q.args[0], q.t))
    if q.kind == QueryKind.HAS_EDGE:
        return int(engine.has_edge(q.args[0], q.args[1], q.t))
    if q.kind == QueryKind.TWO_HOP:
        return len(engine.k_hop(q.args[0], q.t, q.args[1]))
    if q.kind == QueryKind.TRIANGLE_COUNT:
        return engine.triangle_count(q.t)
    if q.kind == QueryKind.ATTRIBUTE_RANGE:
        return len(engine.attribute_range(q.t, *q.args))
    if q.kind == QueryKind.DEGREE_TOPK:
        return len(engine.degree_topk(q.t, q.args[0]))
    if q.kind == QueryKind.TEMPORAL_REACH:
        u, v, t0, t1 = q.args
        return int(engine.temporal_reachable(u, v, t0, t1))
    if q.kind == QueryKind.EDGE_WINDOW:
        u, v, t0, t1 = q.args
        return engine.edge_window_count(u, v, t0, t1)
    raise AssertionError(q.kind)  # pragma: no cover - enum is closed


def execute_workload(
    engine: GraphQueryEngine, queries: Sequence[Query]
) -> WorkloadReport:
    """Run every query through per-query dispatch, timing per class.

    The reference execution path (and the baseline the serving benches
    compare against).  Raises ``ValueError`` on an empty workload — an
    empty benchmark is a configuration error, not a 0-second success.
    """
    if not queries:
        raise ValueError("empty workload")
    latency: Dict[str, float] = {}
    counts: Dict[str, int] = {}
    sizes: Dict[str, float] = {}
    start = time.perf_counter()
    for q in queries:
        q0 = time.perf_counter()
        size = _run_query(engine, q)
        dt = time.perf_counter() - q0
        key = q.kind.value
        latency[key] = latency.get(key, 0.0) + dt
        counts[key] = counts.get(key, 0) + 1
        sizes[key] = sizes.get(key, 0.0) + size
    total = time.perf_counter() - start
    return WorkloadReport(
        total_queries=len(queries),
        total_seconds=total,
        latency_by_kind={k: latency[k] / counts[k] for k in counts},
        count_by_kind=counts,
        mean_result_size={k: sizes[k] / counts[k] for k in counts},
    )
