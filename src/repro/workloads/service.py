"""Concurrent query serving: many request batches, one shared engine.

:class:`QueryService` is the workload counterpart of
:class:`~repro.api.service.GenerationService`: a batch of
:class:`QueryRequest`\\ s — each a sequence of
:class:`~repro.workloads.generator.Query` instances — is executed over
a ``serial`` or ``thread`` executor against **one shared engine**, and
every request's results are deterministic:

* Queries are pure reads over an immutable store, so a request's
  result cardinalities are a function of ``(graph, request)`` alone —
  batch composition, batch order, executor and pool width are pure
  deployment knobs (pinned by ``tests/workloads/test_service.py``).
* Results come back in request order regardless of completion order.
* All requests share one bounded
  :class:`~repro.workloads.cache.SnapshotPlanCache`, so a hot
  timestep's CSR/CSC plans are materialized once and reused across
  the whole request stream — that sharing is the point of serving
  through one service instead of per-request engines.

There is deliberately no ``process`` executor: the engine's value is
the *shared* in-memory store and plan cache, and shipping both to
worker processes would serialize the graph per worker — that
deployment is "run one service per process behind a router", not a
pool mode.  The kernels the requests spend their time in
(``searchsorted``, fancy gathers) release the GIL, so threads overlap
on multi-core hosts.

**Fault tolerance** (contract in ``docs/reliability.md``): a failing
request yields a structured
:class:`~repro.reliability.errors.RequestFailure` on its own result
instead of poisoning siblings; per-request ``deadline_seconds`` bounds
the wait on each worker future (a slow worker surfaces as a typed
expiry, never a hang); ``retry_policy`` retries transient faults with
deterministic backoff; ``max_pending`` sheds overflow with a
structured :class:`~repro.reliability.errors.ServiceOverloadedError`.
Degradation is built in: a faulting batched kernel falls back to its
pinned per-query reference twin
(:func:`~repro.workloads.batch.run_queries_resilient`) and a faulting
plan-cache lookup is bypassed — in both cases completed results stay
bit-identical to the fault-free run (asserted by the chaos suite).
The injection points are ``query.request`` (here),
``query.batch_kernel`` (batch dispatch) and ``cache.plan`` (plan
cache).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from time import perf_counter
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.profiling import profiler
from repro.reliability import (
    AdmissionController,
    Deadline,
    DeadlineExceededError,
    RequestFailure,
    RetryPolicy,
    fault_injector,
)
from repro.workloads.batch import run_queries_resilient
from repro.workloads.engine import GraphQueryEngine
from repro.workloads.generator import (
    Query,
    WorkloadConfig,
    WorkloadGenerator,
    WorkloadReport,
    _run_query,
)

__all__ = [
    "SERVICE_EXECUTORS",
    "QueryRequest",
    "QueryResult",
    "QueryService",
]

#: Executor families the service supports (see the module docstring
#: for why ``process`` is intentionally absent).
SERVICE_EXECUTORS = ("serial", "thread")


@dataclass(frozen=True)
class QueryRequest:
    """One unit of serving work: an ordered sequence of queries."""

    queries: Tuple[Query, ...]

    def __init__(self, queries: Sequence[Query]):
        object.__setattr__(self, "queries", tuple(queries))
        if not self.queries:
            raise ValueError("a QueryRequest needs at least one query")

    def __len__(self) -> int:
        return len(self.queries)


@dataclass
class QueryResult:
    """A request together with its results and wall-clock.

    ``cardinalities[i]`` is the result cardinality of
    ``request.queries[i]`` — bit-identical to per-query dispatch.
    ``seconds_by_kind`` attributes the request's execution time to
    query classes (kernel-call granularity for batched classes).

    ``cardinalities`` is ``None`` exactly when ``error`` is set (the
    request failed after ``attempts`` executions); ``degraded_kinds``
    names query classes whose batched kernel faulted and fell back to
    the per-query reference twin (identical results).
    """

    request: QueryRequest
    cardinalities: Optional[np.ndarray]
    seconds: float
    seconds_by_kind: Dict[str, float]
    attempts: int = 1
    degraded_kinds: FrozenSet[str] = field(default_factory=frozenset)
    error: Optional[RequestFailure] = None

    @property
    def ok(self) -> bool:
        """True when the request produced cardinalities."""
        return self.error is None


class QueryService:
    """Concurrent executor of query-request batches over one engine.

    Parameters
    ----------
    graph:
        A :class:`~repro.graph.dynamic.DynamicAttributedGraph` to
        serve, or an existing :class:`GraphQueryEngine` (e.g. one
        built via ``GraphQueryEngine.from_event_stream``).
    executor:
        ``"serial"`` (in-process loop) or ``"thread"`` (the batched
        kernels are GIL-releasing NumPy, so threads overlap).
    max_workers:
        Thread-pool width; defaults to ``cpu_count``.  The pool is
        created lazily on the first batch and reused; use the service
        as a context manager (or call :meth:`close`) to release it.
    cache_memory_budget_bytes:
        Budget for the shared plan cache when the service builds its
        own engine (ignored when an engine is passed in — its cache,
        and its budget, are adopted).
    batched:
        ``False`` forces per-query dispatch inside every request —
        the comparison baseline the throughput benches use; results
        are identical either way.
    retry_policy:
        Optional :class:`~repro.reliability.RetryPolicy` retrying
        transient per-request faults with deterministic backoff.
    deadline_seconds:
        Optional per-request budget; ``serial`` checks it
        cooperatively, ``thread`` also bounds the wait on the worker
        future so a stuck request answers with a structured expiry.
    max_pending:
        Bound on requests in flight across all concurrent callers;
        overflow raises
        :class:`~repro.reliability.ServiceOverloadedError` with a
        retry-after estimate instead of queueing unboundedly.
    """

    def __init__(
        self,
        graph: Union["DynamicAttributedGraph", GraphQueryEngine],
        *,
        executor: str = "thread",
        max_workers: Optional[int] = None,
        cache_memory_budget_bytes: Optional[int] = None,
        batched: bool = True,
        retry_policy: Optional[RetryPolicy] = None,
        deadline_seconds: Optional[float] = None,
        max_pending: Optional[int] = None,
    ):
        if executor not in SERVICE_EXECUTORS:
            raise ValueError(
                f"unknown executor {executor!r}; expected one of "
                f"{SERVICE_EXECUTORS} (query serving shares one in-memory "
                "store, so process pools are a deployment topology, not a "
                "pool mode)"
            )
        if deadline_seconds is not None and deadline_seconds <= 0:
            raise ValueError("deadline_seconds must be positive")
        if isinstance(graph, GraphQueryEngine):
            self.engine = graph
        else:
            self.engine = GraphQueryEngine(
                graph,
                cache_memory_budget_bytes=cache_memory_budget_bytes,
            )
        # force the lazy plan cache now: an invalid budget must fail
        # service construction, not degrade the first request
        self.engine.plans
        self.executor = executor
        self.max_workers = max_workers
        self.batched = batched
        self.retry_policy = retry_policy
        self.deadline_seconds = deadline_seconds
        self._admission = AdmissionController(max_pending)
        self._pool = None
        self._pool_init = threading.Lock()

    # ------------------------------------------------------------------
    def _workers(self) -> int:
        import os

        if self.max_workers is not None:
            return max(int(self.max_workers), 1)
        return max(os.cpu_count() or 1, 1)

    def _run_once(
        self,
        request: QueryRequest,
        engine: Optional[GraphQueryEngine] = None,
    ) -> Tuple[np.ndarray, Dict[str, float], FrozenSet[str]]:
        engine = engine if engine is not None else self.engine
        if self.batched:
            return run_queries_resilient(engine, request.queries)
        cards = np.zeros(len(request.queries), dtype=np.int64)
        by_kind: Dict[str, float] = {}
        for i, q in enumerate(request.queries):
            q0 = perf_counter()
            cards[i] = _run_query(engine, q)
            by_kind[q.kind.value] = by_kind.get(q.kind.value, 0.0) + (
                perf_counter() - q0
            )
        return cards, by_kind, frozenset()

    def _execute_request(
        self,
        request: QueryRequest,
        index: int = 0,
        deadline: Optional[Deadline] = None,
        engine: Optional[GraphQueryEngine] = None,
    ) -> QueryResult:
        """Execute one request; failures become result values."""
        start = perf_counter()
        attempt_counter = 0

        def attempt():
            nonlocal attempt_counter
            attempt_counter += 1
            if deadline is not None:
                deadline.check()
            fault_injector.fire(
                "query.request", key=(index, attempt_counter)
            )
            return self._run_once(request, engine)

        try:
            if self.retry_policy is not None:
                (cards, by_kind, degraded), attempts = self.retry_policy.run(
                    attempt, key=index, deadline=deadline
                )
            else:
                cards, by_kind, degraded = attempt()
                attempts = 1
            return QueryResult(
                request=request,
                cardinalities=cards,
                seconds=perf_counter() - start,
                seconds_by_kind=by_kind,
                attempts=attempts,
                degraded_kinds=degraded,
            )
        except Exception as exc:
            attempts = getattr(exc, "_retry_attempts", None) or max(
                attempt_counter, 1
            )
            return QueryResult(
                request=request,
                cardinalities=None,
                seconds=perf_counter() - start,
                seconds_by_kind={},
                attempts=attempts,
                error=RequestFailure.from_exception(exc, attempts),
            )

    def _deadline_result(
        self, request: QueryRequest, deadline: Deadline
    ) -> QueryResult:
        failure = RequestFailure.from_exception(
            DeadlineExceededError(
                deadline.budget_seconds, deadline.elapsed()
            )
        )
        return QueryResult(
            request=request,
            cardinalities=None,
            seconds=deadline.elapsed(),
            seconds_by_kind={},
            error=failure,
        )

    def _map(
        self,
        requests: Sequence[QueryRequest],
        engine: Optional[GraphQueryEngine] = None,
    ) -> List[QueryResult]:
        deadlines = [
            Deadline.after(self.deadline_seconds) for _ in requests
        ]
        if self.executor == "serial":
            return [
                self._execute_request(request, i, deadline, engine)
                for i, (request, deadline) in enumerate(
                    zip(requests, deadlines)
                )
            ]
        if self._pool is None:
            # locked: concurrent first batches must agree on one pool,
            # or the loser's pool would leak past close()
            with self._pool_init:
                if self._pool is None:
                    from concurrent.futures import ThreadPoolExecutor

                    self._pool = ThreadPoolExecutor(
                        max_workers=self._workers(),
                        thread_name_prefix="query-service",
                    )
        from concurrent.futures import TimeoutError as FuturesTimeout

        futures = [
            self._pool.submit(
                self._execute_request, request, i, deadline, engine
            )
            for i, (request, deadline) in enumerate(zip(requests, deadlines))
        ]
        results: List[QueryResult] = []
        for request, deadline, future in zip(requests, deadlines, futures):
            try:
                timeout = (
                    None
                    if deadline is None
                    else max(deadline.remaining(), 0.0)
                )
                results.append(future.result(timeout=timeout))
            except FuturesTimeout:
                # the worker thread keeps running, but the caller gets
                # a structured expiry now instead of hanging on it
                future.cancel()
                results.append(self._deadline_result(request, deadline))
        return results

    # ------------------------------------------------------------------
    def run_batch(
        self,
        requests: Sequence[QueryRequest],
        *,
        engine: Optional[GraphQueryEngine] = None,
    ) -> List[QueryResult]:
        """Execute every request; results are in request order.

        Per-request failures come back as structured
        :class:`~repro.reliability.RequestFailure` values on the
        affected results (check ``result.ok``); the only exception
        raised here is
        :class:`~repro.reliability.ServiceOverloadedError` when the
        batch would exceed ``max_pending``.

        ``engine`` overrides the service's engine for this batch only
        — the live tier's pinned-epoch hook
        (:class:`~repro.workloads.live.LiveQueryService` answers each
        batch against one epoch snapshot while the underlying store
        keeps ingesting).  Deadlines, retries and admission are
        unaffected by the override.
        """
        requests = list(requests)
        if not requests:
            return []
        self._admission.try_acquire(len(requests))
        t0 = perf_counter()
        try:
            with profiler.timer("workloads.service.run_batch"):
                return self._map(requests, engine)
        finally:
            self._admission.release(
                len(requests), seconds=perf_counter() - t0
            )

    def run_workload(
        self,
        config: WorkloadConfig,
        *,
        batch_size: int = 1024,
    ) -> Tuple[WorkloadReport, List[QueryResult]]:
        """Generate a workload mix and replay it through the service.

        The paper-style entry point: the mix described by ``config``
        is drawn against the served graph
        (:class:`WorkloadGenerator`), split into ``batch_size``-query
        requests, and executed on the service's pool.  Returns the
        aggregate :class:`WorkloadReport` (``total_seconds`` is the
        concurrent wall-clock, so ``throughput()`` reflects the pool)
        together with the per-request results.

        The report aggregates *completed* requests only; failed
        requests (possible when a deadline or armed fault injector is
        in play) stay visible on the returned results.  With
        ``max_pending`` set, size it for ``num_queries / batch_size``
        requests — the replay submits the whole workload in one
        ``run_batch`` call.
        """
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        queries = WorkloadGenerator(self.engine.graph, config).generate()
        if not queries:
            raise ValueError("workload generated no queries")
        requests = [
            QueryRequest(queries[i:i + batch_size])
            for i in range(0, len(queries), batch_size)
        ]
        start = perf_counter()
        results = self.run_batch(requests)
        total = perf_counter() - start
        latency: Dict[str, float] = {}
        counts: Dict[str, int] = {}
        sizes: Dict[str, float] = {}
        completed_queries = 0
        for result in results:
            if not result.ok:
                continue
            completed_queries += len(result.request)
            for key, s in result.seconds_by_kind.items():
                latency[key] = latency.get(key, 0.0) + s
            for q, card in zip(
                result.request.queries, result.cardinalities.tolist()
            ):
                key = q.kind.value
                counts[key] = counts.get(key, 0) + 1
                sizes[key] = sizes.get(key, 0.0) + card
        report = WorkloadReport(
            total_queries=completed_queries,
            total_seconds=total,
            latency_by_kind={k: latency[k] / counts[k] for k in counts},
            count_by_kind=counts,
            mean_result_size={k: sizes[k] / counts[k] for k in counts},
        )
        return report, results

    # ------------------------------------------------------------------
    def plan_cache_stats(self):
        """Hit/miss/eviction/bypass counters of the shared plan cache."""
        return self.engine.plans.stats()

    def admission_stats(self):
        """Pending/admitted/shed counters of the bounded queue."""
        return self._admission.stats()

    def close(self) -> None:
        """Shut down the thread pool (no-op for ``serial``)."""
        pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True)

    def __enter__(self) -> "QueryService":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
