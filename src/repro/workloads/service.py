"""Concurrent query serving: many request batches, one shared engine.

:class:`QueryService` is the workload counterpart of
:class:`~repro.api.service.GenerationService`: a batch of
:class:`QueryRequest`\\ s — each a sequence of
:class:`~repro.workloads.generator.Query` instances — is executed over
a ``serial`` or ``thread`` executor against **one shared engine**, and
every request's results are deterministic:

* Queries are pure reads over an immutable store, so a request's
  result cardinalities are a function of ``(graph, request)`` alone —
  batch composition, batch order, executor and pool width are pure
  deployment knobs (pinned by ``tests/workloads/test_service.py``).
* Results come back in request order regardless of completion order.
* All requests share one bounded
  :class:`~repro.workloads.cache.SnapshotPlanCache`, so a hot
  timestep's CSR/CSC plans are materialized once and reused across
  the whole request stream — that sharing is the point of serving
  through one service instead of per-request engines.

There is deliberately no ``process`` executor: the engine's value is
the *shared* in-memory store and plan cache, and shipping both to
worker processes would serialize the graph per worker — that
deployment is "run one service per process behind a router", not a
pool mode.  The kernels the requests spend their time in
(``searchsorted``, fancy gathers) release the GIL, so threads overlap
on multi-core hosts.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from time import perf_counter
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.profiling import profiler
from repro.workloads.batch import run_queries_batched
from repro.workloads.engine import GraphQueryEngine
from repro.workloads.generator import (
    Query,
    WorkloadConfig,
    WorkloadGenerator,
    WorkloadReport,
    _run_query,
)

__all__ = [
    "SERVICE_EXECUTORS",
    "QueryRequest",
    "QueryResult",
    "QueryService",
]

#: Executor families the service supports (see the module docstring
#: for why ``process`` is intentionally absent).
SERVICE_EXECUTORS = ("serial", "thread")


@dataclass(frozen=True)
class QueryRequest:
    """One unit of serving work: an ordered sequence of queries."""

    queries: Tuple[Query, ...]

    def __init__(self, queries: Sequence[Query]):
        object.__setattr__(self, "queries", tuple(queries))
        if not self.queries:
            raise ValueError("a QueryRequest needs at least one query")

    def __len__(self) -> int:
        return len(self.queries)


@dataclass
class QueryResult:
    """A request together with its results and wall-clock.

    ``cardinalities[i]`` is the result cardinality of
    ``request.queries[i]`` — bit-identical to per-query dispatch.
    ``seconds_by_kind`` attributes the request's execution time to
    query classes (kernel-call granularity for batched classes).
    """

    request: QueryRequest
    cardinalities: np.ndarray
    seconds: float
    seconds_by_kind: Dict[str, float]


class QueryService:
    """Concurrent executor of query-request batches over one engine.

    Parameters
    ----------
    graph:
        A :class:`~repro.graph.dynamic.DynamicAttributedGraph` to
        serve, or an existing :class:`GraphQueryEngine` (e.g. one
        built via ``GraphQueryEngine.from_event_stream``).
    executor:
        ``"serial"`` (in-process loop) or ``"thread"`` (the batched
        kernels are GIL-releasing NumPy, so threads overlap).
    max_workers:
        Thread-pool width; defaults to ``cpu_count``.  The pool is
        created lazily on the first batch and reused; use the service
        as a context manager (or call :meth:`close`) to release it.
    cache_memory_budget_bytes:
        Budget for the shared plan cache when the service builds its
        own engine (ignored when an engine is passed in — its cache,
        and its budget, are adopted).
    batched:
        ``False`` forces per-query dispatch inside every request —
        the comparison baseline the throughput benches use; results
        are identical either way.
    """

    def __init__(
        self,
        graph: Union["DynamicAttributedGraph", GraphQueryEngine],
        *,
        executor: str = "thread",
        max_workers: Optional[int] = None,
        cache_memory_budget_bytes: Optional[int] = None,
        batched: bool = True,
    ):
        if executor not in SERVICE_EXECUTORS:
            raise ValueError(
                f"unknown executor {executor!r}; expected one of "
                f"{SERVICE_EXECUTORS} (query serving shares one in-memory "
                "store, so process pools are a deployment topology, not a "
                "pool mode)"
            )
        if isinstance(graph, GraphQueryEngine):
            self.engine = graph
        else:
            self.engine = GraphQueryEngine(
                graph,
                cache_memory_budget_bytes=cache_memory_budget_bytes,
            )
        self.executor = executor
        self.max_workers = max_workers
        self.batched = batched
        self._pool = None
        self._pool_init = threading.Lock()

    # ------------------------------------------------------------------
    def _workers(self) -> int:
        import os

        if self.max_workers is not None:
            return max(int(self.max_workers), 1)
        return max(os.cpu_count() or 1, 1)

    def _execute_request(self, request: QueryRequest) -> QueryResult:
        start = perf_counter()
        if self.batched:
            cards, by_kind = run_queries_batched(
                self.engine, request.queries
            )
        else:
            cards = np.zeros(len(request.queries), dtype=np.int64)
            by_kind = {}
            for i, q in enumerate(request.queries):
                q0 = perf_counter()
                cards[i] = _run_query(self.engine, q)
                by_kind[q.kind.value] = by_kind.get(q.kind.value, 0.0) + (
                    perf_counter() - q0
                )
        return QueryResult(
            request=request,
            cardinalities=cards,
            seconds=perf_counter() - start,
            seconds_by_kind=by_kind,
        )

    def _map(self, requests: Sequence[QueryRequest]) -> List[QueryResult]:
        if self.executor == "serial":
            return [self._execute_request(r) for r in requests]
        if self._pool is None:
            # locked: concurrent first batches must agree on one pool,
            # or the loser's pool would leak past close()
            with self._pool_init:
                if self._pool is None:
                    from concurrent.futures import ThreadPoolExecutor

                    self._pool = ThreadPoolExecutor(
                        max_workers=self._workers(),
                        thread_name_prefix="query-service",
                    )
        return list(self._pool.map(self._execute_request, requests))

    # ------------------------------------------------------------------
    def run_batch(
        self, requests: Sequence[QueryRequest]
    ) -> List[QueryResult]:
        """Execute every request; results are in request order."""
        requests = list(requests)
        if not requests:
            return []
        with profiler.timer("workloads.service.run_batch"):
            return self._map(requests)

    def run_workload(
        self,
        config: WorkloadConfig,
        *,
        batch_size: int = 1024,
    ) -> Tuple[WorkloadReport, List[QueryResult]]:
        """Generate a workload mix and replay it through the service.

        The paper-style entry point: the mix described by ``config``
        is drawn against the served graph
        (:class:`WorkloadGenerator`), split into ``batch_size``-query
        requests, and executed on the service's pool.  Returns the
        aggregate :class:`WorkloadReport` (``total_seconds`` is the
        concurrent wall-clock, so ``throughput()`` reflects the pool)
        together with the per-request results.
        """
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        queries = WorkloadGenerator(self.engine.graph, config).generate()
        if not queries:
            raise ValueError("workload generated no queries")
        requests = [
            QueryRequest(queries[i:i + batch_size])
            for i in range(0, len(queries), batch_size)
        ]
        start = perf_counter()
        results = self.run_batch(requests)
        total = perf_counter() - start
        latency: Dict[str, float] = {}
        counts: Dict[str, int] = {}
        sizes: Dict[str, float] = {}
        for result in results:
            for key, s in result.seconds_by_kind.items():
                latency[key] = latency.get(key, 0.0) + s
            for q, card in zip(
                result.request.queries, result.cardinalities.tolist()
            ):
                key = q.kind.value
                counts[key] = counts.get(key, 0) + 1
                sizes[key] = sizes.get(key, 0.0) + card
        report = WorkloadReport(
            total_queries=len(queries),
            total_seconds=total,
            latency_by_kind={k: latency[k] / counts[k] for k in counts},
            count_by_kind=counts,
            mean_result_size={k: sizes[k] / counts[k] for k in counts},
        )
        return report, results

    # ------------------------------------------------------------------
    def plan_cache_stats(self):
        """Hit/miss/eviction counters of the shared plan cache."""
        return self.engine.plans.stats()

    def close(self) -> None:
        """Shut down the thread pool (no-op for ``serial``)."""
        pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True)

    def __enter__(self) -> "QueryService":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
