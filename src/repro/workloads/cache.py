"""Bounded snapshot-plan cache: the serving layer's index memory model.

A *plan* is a per-timestep (or whole-graph) index materialization a
query kernel runs against: the forward CSR of one snapshot, its
reverse CSC, a sorted attribute order for range scans, or the global
sorted edge-key columns the temporal kernels binary-search.  The
:class:`~repro.graph.store.TemporalEdgeStore` caches CSR/CSC per
timestep *unboundedly* — fine for analytics sweeps that touch every
timestep once, wrong for a long-lived serving process where T is large
and traffic concentrates on a hot subset of timesteps.

:class:`SnapshotPlanCache` is the bounded counterpart: an LRU over
plan materializations with ``memory_budget_bytes``-style sizing that
mirrors :class:`~repro.graph.streams.StreamingStoreBuilder` — the
budget bounds the bytes *owned* by cached plans (zero-copy views of
the store's shared columns cost nothing and are not charged), and the
least-recently-used plans are evicted once the owned total exceeds it.
Evicting a plan never changes results — the next request rebuilds it
from the store columns — so the budget is purely a residency knob.

The cache is thread-safe (one lock around the LRU bookkeeping; plan
construction runs outside it) so a single instance can back every
request of a concurrent :class:`~repro.workloads.service.QueryService`.

The cache is also a *degradation* point (``docs/reliability.md``): a
fault in the cache path — provoked deterministically through the
``cache.plan`` injection point — bypasses the cache for that lookup
and builds the plan directly from the store columns.  Results are
unchanged (eviction never changes results, and neither does never
inserting); only residency suffers.  Bypasses are counted in
:class:`PlanCacheStats`.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Optional, Tuple

import numpy as np

from repro.reliability import InjectedFault, fault_injector

__all__ = ["PlanCacheStats", "SnapshotPlanCache"]

#: Key heads of per-timestep plans — ``key[1]`` is the timestep.
#: Extension keys (the live tier's ``("csr", t, "open")`` variants)
#: share these heads, so :meth:`SnapshotPlanCache.invalidate_step`
#: covers them too.
_STEP_PLAN_HEADS = ("csr", "csc", "attr")

#: Key heads of whole-store plans (epoch-qualified in the live tier).
_STORE_PLAN_HEADS = ("temporal_keys", "pair_keys")


@dataclass(frozen=True)
class PlanCacheStats:
    """Point-in-time counters of one :class:`SnapshotPlanCache`.

    ``hits`` / ``misses`` count plan lookups (a miss includes the
    build); ``evictions`` counts plans dropped to stay under budget;
    ``resident_plans`` / ``resident_bytes`` describe what is cached
    *now* (owned bytes only — zero-copy column views are free);
    ``bypasses`` counts lookups that degraded around a cache fault
    (plan built directly, never inserted — results unchanged);
    ``invalidations`` counts plans dropped through
    :meth:`SnapshotPlanCache.invalidate_step` /
    :meth:`~SnapshotPlanCache.invalidate_store_plans` (the live tier
    fires these as timesteps seal).

    Every resident plan entered via a miss and leaves via eviction,
    invalidation or ``clear`` (counted as evictions), so in
    single-threaded use ``resident_plans == misses - evictions -
    invalidations``; concurrent lookups can lose a build race (a miss
    that inserts nothing), relaxing the identity to ``<=``.
    """

    hits: int
    misses: int
    evictions: int
    resident_plans: int
    resident_bytes: int
    bypasses: int = 0
    invalidations: int = 0

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from cache (0.0 when untouched)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class SnapshotPlanCache:
    """Bounded LRU over per-timestep index materializations.

    Parameters
    ----------
    store:
        The :class:`~repro.graph.store.TemporalEdgeStore` plans are
        derived from.  The cache never populates the store's own
        (unbounded) ``csr_at`` / ``csc_at`` caches — it builds plans
        straight from the zero-copy column slices, so *this* object's
        budget is the serving path's whole index footprint.
    memory_budget_bytes:
        Bound on the bytes owned by resident plans.  ``None`` (the
        default) means unbounded — parity with the store's own caches.
        The most recently used plan is always kept resident even if it
        alone exceeds the budget (a query in flight needs its plan);
        everything else is evicted LRU-first.
    max_plans:
        Optional additional bound on the number of resident plans.

    Plans are immutable (tuples of arrays); a plan handed to a caller
    stays valid after eviction, eviction only drops the cache's
    reference.
    """

    def __init__(
        self,
        store,
        *,
        memory_budget_bytes: Optional[int] = None,
        max_plans: Optional[int] = None,
    ):
        if memory_budget_bytes is not None and memory_budget_bytes <= 0:
            raise ValueError("memory_budget_bytes must be positive")
        if max_plans is not None and max_plans < 1:
            raise ValueError("max_plans must be >= 1")
        self.store = store
        self.memory_budget_bytes = memory_budget_bytes
        self.max_plans = max_plans
        self._plans: "OrderedDict[Tuple, Tuple[object, int]]" = OrderedDict()
        self._lock = threading.Lock()
        self._bytes = 0
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._bypasses = 0
        self._invalidations = 0

    # ------------------------------------------------------------------
    # bookkeeping
    # ------------------------------------------------------------------
    def _get_or_build(
        self, key: Tuple, build: Callable[[], Tuple[object, int]]
    ):
        """Return the plan under ``key``, building it on a miss.

        ``build`` returns ``(plan, owned_bytes)`` and runs *outside*
        the lock: plans are deterministic, so a racing double-build
        wastes work but can never corrupt the cache — the second
        writer finds the key present and discards its copy.

        A fault injected at the ``cache.plan`` point degrades to a
        cache *bypass*: the plan is built directly and not inserted,
        so the lookup still answers correctly.
        """
        try:
            fault_injector.fire("cache.plan", key=key)
        except InjectedFault:
            with self._lock:
                self._bypasses += 1
            return build()[0]
        with self._lock:
            entry = self._plans.get(key)
            if entry is not None:
                self._plans.move_to_end(key)
                self._hits += 1
                return entry[0]
        plan, owned = build()
        with self._lock:
            self._misses += 1
            entry = self._plans.get(key)
            if entry is not None:  # lost a build race; keep the winner
                self._plans.move_to_end(key)
                return entry[0]
            self._plans[key] = (plan, owned)
            self._bytes += owned
            self._evict_locked()
        return plan

    def _evict_locked(self) -> None:
        """Drop LRU plans until under budget (newest always survives)."""
        def over() -> bool:
            if self.max_plans is not None and len(self._plans) > self.max_plans:
                return True
            return (
                self.memory_budget_bytes is not None
                and self._bytes > self.memory_budget_bytes
            )

        while len(self._plans) > 1 and over():
            _, (_, owned) = self._plans.popitem(last=False)
            self._bytes -= owned
            self._evictions += 1

    def get_or_build(
        self, key: Tuple, build: Callable[[], Tuple[object, int]]
    ):
        """Extension point: cache an arbitrary-keyed plan.

        ``build`` returns ``(plan, owned_bytes)`` (use
        :meth:`_owned_nbytes`) and runs outside the lock; the lookup
        gets the same LRU/budget/fault-bypass semantics as the
        built-in plans.  Used by the live tier's epoch plan views to
        key open-step and per-epoch whole-store plans
        (:mod:`repro.workloads.live`); custom keys should reuse the
        built-in key heads (``"csr"``, ``"temporal_keys"``, ...) so
        the invalidation APIs cover them.
        """
        return self._get_or_build(key, build)

    # ------------------------------------------------------------------
    # invalidation
    # ------------------------------------------------------------------
    def _invalidate_locked(self, doomed) -> int:
        for key in doomed:
            _, owned = self._plans.pop(key)
            self._bytes -= owned
        self._invalidations += len(doomed)
        return len(doomed)

    def invalidate_step(self, t: int) -> int:
        """Drop every resident per-timestep plan of timestep ``t``.

        Covers the built-in ``("csr", t)`` / ``("csc", t)`` /
        ``("attr", t, dim)`` keys and any extension key sharing those
        heads (the live tier's open-step variants).  Returns the
        number of plans dropped.  Like eviction, invalidation never
        changes results — the next lookup rebuilds from the store
        columns — and the owned-bytes account shrinks with each drop,
        so the budget is never exceeded mid-invalidation.  The live
        tier calls this for each timestep as it seals
        (:class:`~repro.workloads.live.LiveQueryService`).
        """
        with self._lock:
            return self._invalidate_locked(
                [
                    key
                    for key in self._plans
                    if key[0] in _STEP_PLAN_HEADS
                    and len(key) >= 2
                    and key[1] == t
                ]
            )

    def invalidate_store_plans(self) -> int:
        """Drop every resident whole-store plan (edge-key columns).

        The ``("temporal_keys", ...)`` / ``("pair_keys", ...)`` plans
        span the entire store, so any structural change (a newly
        sealed timestep) stales them all at once — per-timestep plans
        are untouched.  Returns the number of plans dropped.
        """
        with self._lock:
            return self._invalidate_locked(
                [key for key in self._plans if key[0] in _STORE_PLAN_HEADS]
            )

    @staticmethod
    def _owned_nbytes(*arrays: np.ndarray) -> int:
        """Bytes the cache is charged for: fresh arrays, not views.

        An array whose ``base`` is set is a view of memory someone
        else owns (the store's shared columns) — holding it is free.
        """
        return sum(a.nbytes for a in arrays if a.base is None)

    # ------------------------------------------------------------------
    # plans
    # ------------------------------------------------------------------
    def csr(self, t: int) -> Tuple[np.ndarray, np.ndarray]:
        """Forward CSR of timestep ``t``: ``(indptr, indices)``.

        ``indices`` is the zero-copy ``dst`` column slice (CSR order
        is the store's canonical order), so only the ``(N + 1,)``
        ``indptr`` counts against the budget.
        """
        def build():
            indptr, indices = self.store.compute_csr_at(t)
            return (indptr, indices), self._owned_nbytes(indptr, indices)

        return self._get_or_build(("csr", t), build)

    def csc(self, t: int) -> Tuple[np.ndarray, np.ndarray]:
        """Reverse CSR (in-edges) of timestep ``t``: ``(indptr, indices)``.

        Costs one O(M_t log M_t) re-sort to build; both arrays are
        fresh and count against the budget.
        """
        def build():
            indptr, indices = self.store.compute_csc_at(t)
            return (indptr, indices), self._owned_nbytes(indptr, indices)

        return self._get_or_build(("csc", t), build)

    def attribute_order(self, t: int, dim: int) -> np.ndarray:
        """Stable argsort of attribute ``dim`` at timestep ``t``."""
        def build():
            values = self.store.attributes[t, :, dim]
            order = np.argsort(values, kind="stable")
            return order, self._owned_nbytes(order)

        return self._get_or_build(("attr", t, dim), build)

    def temporal_keys(self) -> np.ndarray:
        """Sorted composite ``(t, src, dst)`` edge keys (whole graph).

        The store's canonical order makes these strictly increasing;
        the edge-existence kernel answers a whole batch with one
        ``np.searchsorted`` against them.
        """
        def build():
            keys = self.store.temporal_edge_keys()
            return keys, self._owned_nbytes(keys)

        return self._get_or_build(("temporal_keys",), build)

    def pair_keys(self) -> np.ndarray:
        """Sorted composite ``(src, dst, t)`` edge keys (whole graph).

        The per-*pair* orientation: all timesteps of one ``(u, v)``
        edge are contiguous, so a temporal-range query is two binary
        searches.  Built with one O(M log M) sort, then reused.
        """
        def build():
            store = self.store
            keys = np.sort(
                (store.src * store.num_nodes + store.dst)
                * store.num_timesteps
                + store.t
            )
            return keys, self._owned_nbytes(keys)

        return self._get_or_build(("pair_keys",), build)

    # ------------------------------------------------------------------
    def stats(self) -> PlanCacheStats:
        """Snapshot of the hit/miss/eviction/residency counters."""
        with self._lock:
            return PlanCacheStats(
                hits=self._hits,
                misses=self._misses,
                evictions=self._evictions,
                resident_plans=len(self._plans),
                resident_bytes=self._bytes,
                bypasses=self._bypasses,
                invalidations=self._invalidations,
            )

    def clear(self) -> None:
        """Drop every resident plan (counters keep accumulating)."""
        with self._lock:
            self._evictions += len(self._plans)
            self._plans.clear()
            self._bytes = 0

    def __repr__(self) -> str:
        s = self.stats()
        budget = (
            "unbounded"
            if self.memory_budget_bytes is None
            else f"{self.memory_budget_bytes}B"
        )
        return (
            f"SnapshotPlanCache(plans={s.resident_plans}, "
            f"bytes={s.resident_bytes}, budget={budget}, "
            f"hit_rate={s.hit_rate:.2f})"
        )
