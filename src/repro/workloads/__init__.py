"""Graph query workloads over dynamic attributed graphs (§I motivation 1).

The paper motivates graph generation first and foremost as *benchmark
data for graph processing systems*: a DBMS vendor needs representative
data **and workloads**.  This package supplies the workload half, as a
small serving stack (documented in ``docs/workloads.md``):

* :class:`GraphQueryEngine` — an in-memory query engine over a
  :class:`~repro.graph.dynamic.DynamicAttributedGraph`: per-query
  methods (neighbour lookups, k-hop expansion, triangle counting,
  attribute range scans, time-respecting reachability, top-degree
  queries) plus batched vectorized kernels (``batch_degrees``,
  ``batch_neighbors``, ``batch_has_edge``,
  ``batch_edge_window_counts``) answering whole query columns in
  bulk, bit-identically.
* :class:`SnapshotPlanCache` — the bounded LRU the engine's
  per-timestep CSR/CSC/attribute/edge-key plans live in
  (``memory_budget_bytes`` sizing).
* :class:`WorkloadConfig` / :class:`WorkloadGenerator` — Zipf-skewed
  query mixes mirroring OLTP-style graph workloads
  (:func:`serving_mix` for the point-lookup-heavy serving profile).
* :func:`execute_workload` / :func:`execute_workload_batched` — run a
  workload per-query or in bulk and collect the per-class
  latency/cardinality profile used to compare engines on original vs
  synthetic data.
* :class:`QueryService` — concurrent request-batch serving over one
  shared engine and plan cache (also exported via :mod:`repro.api`).
* :class:`LiveQueryService` — the same serving contract over a
  :class:`~repro.graph.live.LiveStoreBuilder` that is still
  ingesting: each request batch pins one sealed epoch, and results
  are bit-identical to a bulk-built store of that epoch's events.
"""

from repro.workloads.batch import (
    BATCHED_KINDS,
    execute_workload_batched,
    run_queries_batched,
    run_queries_resilient,
)
from repro.workloads.cache import PlanCacheStats, SnapshotPlanCache
from repro.workloads.engine import GraphQueryEngine
from repro.workloads.generator import (
    Query,
    QueryKind,
    WorkloadConfig,
    WorkloadGenerator,
    WorkloadReport,
    execute_workload,
    serving_mix,
)
from repro.workloads.live import (
    EpochPlanView,
    LiveQueryService,
    LiveServiceStats,
)
from repro.workloads.service import (
    SERVICE_EXECUTORS,
    QueryRequest,
    QueryResult,
    QueryService,
)

__all__ = [
    "BATCHED_KINDS",
    "EpochPlanView",
    "GraphQueryEngine",
    "LiveQueryService",
    "LiveServiceStats",
    "PlanCacheStats",
    "Query",
    "QueryKind",
    "QueryRequest",
    "QueryResult",
    "QueryService",
    "SERVICE_EXECUTORS",
    "SnapshotPlanCache",
    "WorkloadConfig",
    "WorkloadGenerator",
    "WorkloadReport",
    "execute_workload",
    "execute_workload_batched",
    "run_queries_batched",
    "run_queries_resilient",
    "serving_mix",
]
