"""Graph query workloads over dynamic attributed graphs (§I motivation 1).

The paper motivates graph generation first and foremost as *benchmark
data for graph processing systems*: a DBMS vendor needs representative
data **and workloads**.  This package supplies the workload half:

* :class:`GraphQueryEngine` — an adjacency-indexed, in-memory query
  engine over a :class:`~repro.graph.dynamic.DynamicAttributedGraph`
  (neighbour lookups, k-hop expansion, triangle counting, attribute
  range scans, time-respecting reachability, top-degree queries).
* :class:`WorkloadConfig` / :class:`WorkloadGenerator` — Zipf-skewed
  query mixes mirroring OLTP-style graph workloads.
* :func:`execute_workload` — run a workload and collect the per-class
  latency/result profile used to compare engines on original vs
  synthetic data.
"""

from repro.workloads.engine import GraphQueryEngine
from repro.workloads.generator import (
    Query,
    QueryKind,
    WorkloadConfig,
    WorkloadGenerator,
    WorkloadReport,
    execute_workload,
)

__all__ = [
    "GraphQueryEngine",
    "Query",
    "QueryKind",
    "WorkloadConfig",
    "WorkloadGenerator",
    "WorkloadReport",
    "execute_workload",
]
