"""In-memory graph query engine over the columnar temporal edge-store.

The serving half of the paper's motivating scenario (§I: benchmark
data *and workloads* for graph processing systems).  One engine wraps
one :class:`~repro.graph.dynamic.DynamicAttributedGraph` and answers
the access patterns graph databases are benchmarked on — point
lookups, traversals, pattern counting, analytics, temporal
reachability — in two dispatch styles:

* **Per-query methods** (:meth:`GraphQueryEngine.out_neighbors`,
  :meth:`~GraphQueryEngine.has_edge`, ...): one Python call per query.
  These are the reference semantics and the ``_reference_batch_*``
  twins the batched kernels are pinned against.
* **Batched kernels** (:meth:`~GraphQueryEngine.batch_degrees`,
  :meth:`~GraphQueryEngine.batch_neighbors`,
  :meth:`~GraphQueryEngine.batch_has_edge`,
  :meth:`~GraphQueryEngine.batch_edge_window_counts`,
  :meth:`~GraphQueryEngine.batch_two_hop`,
  :meth:`~GraphQueryEngine.batch_temporal_reach`): whole query
  *columns* — parallel arrays of nodes/timesteps — answered in bulk
  with ``searchsorted``/CSR slicing on the store, bit-identical to the
  per-query loop at a fraction of the dispatch cost.  The traversal
  kernels run frontier-vectorized multi-source BFS: one packed
  ``query_id * N + node`` key array carries every query's frontier
  per level (deduplicated against a flat visited bitmap over the same
  key space), so a whole batch of reachability queries advances in a
  handful of ``np.repeat``/bitmap kernel passes.  This is the
  high-throughput serving path
  (:class:`~repro.workloads.service.QueryService` rides it).

Every index the engine consults is a *plan* in a
:class:`~repro.workloads.cache.SnapshotPlanCache`: forward CSR as a
zero-copy view of the store's ``(t, src, dst)``-sorted columns,
reverse CSC as one O(M_t log M_t) re-sort, sorted attribute orders
for range scans, and the global sorted edge-key columns behind the
edge-existence and temporal-range kernels.  The cache is bounded
(``cache_memory_budget_bytes``) and shared across concurrent
requests; no dense ``(N, N)`` matrix is ever touched
(``track_dense_materializations`` stays 0 on this path).  The prose
contract lives in ``docs/workloads.md``.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional, Set, Tuple

import numpy as np

from repro.graph import properties as props
from repro.graph.dynamic import DynamicAttributedGraph
from repro.workloads.cache import SnapshotPlanCache


def _as_query_column(values, name: str) -> np.ndarray:
    """Coerce one query column to a 1-D int64 array (scalars broadcast)."""
    arr = np.asarray(values, dtype=np.int64)
    if arr.ndim == 0:
        arr = arr.reshape(1)
    if arr.ndim != 1:
        raise ValueError(f"{name} must be one-dimensional")
    return arr


def _expand_frontier(
    keys: np.ndarray,
    indptr: np.ndarray,
    indices: np.ndarray,
    n: int,
) -> np.ndarray:
    """One BFS level for a whole batch: expand packed frontier keys.

    ``keys`` are packed ``query_id * n + node`` int64 keys (the
    per-query node namespaces stay disjoint, so one flat array carries
    every query's frontier at once).  Each key's node is expanded
    through the CSR plan with ``np.repeat`` over its indptr slice;
    the result is the packed key array of all (query, neighbour)
    pairs, duplicates included — callers deduplicate against a flat
    visited bitmap indexed by the same packed keys.
    """
    nodes = keys % n
    starts = indptr[nodes]
    lens = indptr[nodes + 1] - starts
    total = int(lens.sum())
    if not total:
        return np.empty(0, dtype=np.int64)
    # per-element offset within its own source row, 0..len-1
    intra = np.arange(total, dtype=np.int64) - np.repeat(
        np.cumsum(lens) - lens, lens
    )
    return np.repeat(keys - nodes, lens) + indices[
        np.repeat(starts, lens) + intra
    ]


def _dedup_keys(keys: np.ndarray) -> np.ndarray:
    """Sorted-unique of packed keys, in place.

    ``np.unique``'s hash path costs far more than an in-place sort on
    the small per-level frontiers the BFS kernels produce; this is the
    classic sort-then-diff form (and the BFS level order never depends
    on frontier order, so sorting in place is free).
    """
    if keys.size <= 1:
        return keys
    keys.sort()
    keep = np.empty(keys.size, dtype=bool)
    keep[0] = True
    np.not_equal(keys[1:], keys[:-1], out=keep[1:])
    return keys[keep]


class GraphQueryEngine:
    """Query engine over a :class:`DynamicAttributedGraph`.

    Parameters
    ----------
    graph:
        The graph to serve.  The engine never mutates it; all indexes
        derive from its canonical columnar store.
    plan_cache:
        An existing :class:`SnapshotPlanCache` to share (e.g. one
        cache across several engines over the same store), or any
        object speaking the same plan protocol (``store`` attribute
        plus ``csr`` / ``csc`` / ``attribute_order`` /
        ``temporal_keys`` / ``pair_keys`` / ``stats`` — the live
        tier's :class:`~repro.workloads.live.EpochPlanView` pins one
        epoch this way).  Must wrap ``graph.store``.
    cache_memory_budget_bytes / cache_max_plans:
        Sizing for the engine's own plan cache when ``plan_cache`` is
        not given; ``None`` means unbounded.  See
        :class:`SnapshotPlanCache` for the memory model.
    """

    def __init__(
        self,
        graph: DynamicAttributedGraph,
        *,
        plan_cache: Optional[SnapshotPlanCache] = None,
        cache_memory_budget_bytes: Optional[int] = None,
        cache_max_plans: Optional[int] = None,
    ):
        self.graph = graph
        if plan_cache is not None and plan_cache.store is not graph.store:
            raise ValueError("plan_cache wraps a different store")
        self._plan_cache = plan_cache
        self._cache_budget = cache_memory_budget_bytes
        self._cache_max_plans = cache_max_plans
        self._plan_cache_init = threading.Lock()

    @property
    def plans(self) -> SnapshotPlanCache:
        """The engine's plan cache (created lazily, then shared).

        Creation is locked: concurrent first queries (a fresh engine
        inside a thread-pooled ``QueryService``) must agree on one
        cache, or the budget and the hit/miss counters would split
        across per-thread instances.
        """
        if self._plan_cache is None:
            with self._plan_cache_init:
                if self._plan_cache is None:
                    self._plan_cache = SnapshotPlanCache(
                        self.graph.store,
                        memory_budget_bytes=self._cache_budget,
                        max_plans=self._cache_max_plans,
                    )
        return self._plan_cache

    @classmethod
    def from_event_stream(
        cls,
        events,
        num_nodes: int,
        num_timesteps: int,
        *,
        chunk_events: int = 65536,
        memory_budget_bytes: int | None = None,
        attributes: np.ndarray | None = None,
        cache_memory_budget_bytes: int | None = None,
    ) -> "GraphQueryEngine":
        """Build an engine straight from a ``(src, dst, t)`` event stream.

        The generated-then-scored pipeline entry point: events fold
        into the canonical columnar store through
        :func:`repro.graph.streams.ingest_stream` — bounded-memory
        chunked canonicalization, so the pipeline never holds more
        than one chunk plus the store — and the engine's plans derive
        lazily from that store.  ``events`` accepts the same forms as
        :func:`ingest_stream` (an array triple, an iterable of scalar
        triples, or an iterable of array batches).
        ``cache_memory_budget_bytes`` bounds the engine's plan cache
        (distinct from the ingestion budget).
        """
        from repro.graph.streams import ingest_stream

        store = ingest_stream(
            events,
            num_nodes,
            num_timesteps,
            chunk_events=chunk_events,
            memory_budget_bytes=memory_budget_bytes,
            attributes=attributes,
        )
        return cls(
            DynamicAttributedGraph.from_store(store),
            cache_memory_budget_bytes=cache_memory_budget_bytes,
        )

    # ------------------------------------------------------------------
    def _check_t(self, t: int) -> None:
        if not 0 <= t < self.graph.num_timesteps:
            raise IndexError(
                f"timestep {t} out of range 0..{self.graph.num_timesteps - 1}"
            )

    def _check_v(self, v: int) -> None:
        if not 0 <= v < self.graph.num_nodes:
            raise IndexError(
                f"node {v} out of range 0..{self.graph.num_nodes - 1}"
            )

    def _check_columns(self, nodes: Dict[str, np.ndarray],
                       ts: Dict[str, np.ndarray]) -> None:
        """Vectorized range validation of whole query columns."""
        for name, col in nodes.items():
            if col.size and (
                col.min() < 0 or col.max() >= self.graph.num_nodes
            ):
                raise IndexError(
                    f"{name} contains node ids out of range "
                    f"0..{self.graph.num_nodes - 1}"
                )
        for name, col in ts.items():
            if col.size and (
                col.min() < 0 or col.max() >= self.graph.num_timesteps
            ):
                raise IndexError(
                    f"{name} contains timesteps out of range "
                    f"0..{self.graph.num_timesteps - 1}"
                )

    def _row(self, v: int, t: int, direction: str) -> np.ndarray:
        """The (sorted) neighbour row of ``v`` at ``t`` (zero-copy)."""
        indptr, indices = (
            self.plans.csr(t) if direction == "out" else self.plans.csc(t)
        )
        return indices[indptr[v]:indptr[v + 1]]

    # ------------------------------------------------------------------
    # point lookups and traversals (per-query reference path)
    # ------------------------------------------------------------------
    def out_neighbors(self, v: int, t: int) -> List[int]:
        """Out-neighbour ids of ``v`` in snapshot ``t`` (sorted)."""
        self._check_v(v)
        self._check_t(t)
        return self._row(v, t, "out").tolist()

    def in_neighbors(self, v: int, t: int) -> List[int]:
        """In-neighbour ids of ``v`` in snapshot ``t`` (sorted)."""
        self._check_v(v)
        self._check_t(t)
        return self._row(v, t, "in").tolist()

    def has_edge(self, u: int, v: int, t: int) -> bool:
        """Whether the directed edge ``u -> v`` exists in snapshot ``t``."""
        self._check_v(u)
        self._check_v(v)
        self._check_t(t)
        row = self._row(u, t, "out")
        pos = np.searchsorted(row, v)
        return bool(pos < len(row) and row[pos] == v)

    def k_hop(self, v: int, t: int, k: int, directed: bool = True) -> Set[int]:
        """Nodes reachable from ``v`` within ``k`` hops in snapshot ``t``.

        ``v`` itself is excluded.  ``directed=False`` traverses the
        symmetrized graph.
        """
        self._check_v(v)
        self._check_t(t)
        if k < 0:
            raise ValueError("k must be >= 0")
        fwd_indptr, fwd_indices = self.plans.csr(t)
        rev = None if directed else self.plans.csc(t)
        frontier = {v}
        seen = {v}
        for _ in range(k):
            nxt: Set[int] = set()
            for u in frontier:
                nxt.update(fwd_indices[fwd_indptr[u]:fwd_indptr[u + 1]].tolist())
                if rev is not None:
                    rev_indptr, rev_indices = rev
                    nxt.update(
                        rev_indices[rev_indptr[u]:rev_indptr[u + 1]].tolist()
                    )
            frontier = nxt - seen
            if not frontier:
                break
            seen |= frontier
        seen.discard(v)
        return seen

    def two_hop_neighbors(self, v: int, t: int) -> Set[int]:
        """Nodes within two directed hops of ``v`` at ``t`` (``v`` excluded).

        The TWO_HOP workload class; equivalent to ``k_hop(v, t, 2)``
        and the per-query twin of :meth:`batch_two_hop`.
        """
        return self.k_hop(v, t, 2)

    # ------------------------------------------------------------------
    # pattern / analytic queries
    # ------------------------------------------------------------------
    def triangle_count(self, t: int) -> int:
        """Undirected triangle count of snapshot ``t`` (CSR kernel)."""
        self._check_t(t)
        return props.triangle_count(self.graph[t])

    def degree_topk(self, t: int, k: int, direction: str = "out") -> List[int]:
        """The ``k`` highest-degree node ids (ties by id, ascending)."""
        self._check_t(t)
        if k < 0:
            raise ValueError("k must be >= 0")
        snap = self.graph[t]
        if direction == "out":
            deg = snap.out_degrees()
        elif direction == "in":
            deg = snap.in_degrees()
        elif direction == "total":
            deg = snap.degrees()
        else:
            raise ValueError(f"unknown direction {direction!r}")
        order = np.lexsort((np.arange(len(deg)), -deg))
        return order[:k].tolist()

    def attribute_range(
        self, t: int, dim: int, lo: float, hi: float
    ) -> List[int]:
        """Node ids with attribute ``dim`` in ``[lo, hi]`` at ``t`` (sorted index scan)."""
        self._check_t(t)
        if not 0 <= dim < self.graph.num_attributes:
            raise IndexError(
                f"attribute {dim} out of range 0..{self.graph.num_attributes - 1}"
            )
        values = self.graph[t].attributes[:, dim]
        order = self.plans.attribute_order(t, dim)
        sorted_vals = values[order]
        left = np.searchsorted(sorted_vals, lo, side="left")
        right = np.searchsorted(sorted_vals, hi, side="right")
        return sorted(order[left:right].tolist())

    # ------------------------------------------------------------------
    # temporal queries
    # ------------------------------------------------------------------
    def temporal_reachable(
        self, u: int, v: int, t0: int, t1: int
    ) -> bool:
        """Time-respecting reachability: can ``u`` reach ``v`` using edges
        of snapshots ``t0..t1`` in non-decreasing snapshot order?

        At each snapshot the frontier may expand through any number of
        that snapshot's edges (edges within one window are concurrent).
        """
        self._check_v(u)
        self._check_v(v)
        self._check_t(t0)
        self._check_t(t1)
        if t1 < t0:
            raise ValueError(f"empty time window [{t0}, {t1}]")
        if u == v:
            return True
        reached = {u}
        for t in range(t0, t1 + 1):
            indptr, indices = self.plans.csr(t)
            frontier = set(reached)
            while frontier:
                nxt: Set[int] = set()
                for w in frontier:
                    for x in indices[indptr[w]:indptr[w + 1]].tolist():
                        if x not in reached:
                            nxt.add(x)
                if v in nxt:
                    return True
                reached |= nxt
                frontier = nxt
        return v in reached

    def edge_window_count(self, u: int, v: int, t0: int, t1: int) -> int:
        """Number of snapshots in ``[t0, t1]`` containing ``u -> v``.

        The per-query temporal-range path (one :meth:`has_edge` per
        snapshot); :meth:`batch_edge_window_counts` answers whole
        columns of these with two binary searches per query.
        """
        self._check_v(u)
        self._check_v(v)
        self._check_t(t0)
        self._check_t(t1)
        if t1 < t0:
            raise ValueError(f"empty time window [{t0}, {t1}]")
        return sum(1 for t in range(t0, t1 + 1) if self.has_edge(u, v, t))

    def edge_persistence(self, u: int, v: int) -> float:
        """Fraction of snapshots containing the edge ``u -> v``."""
        t_len = self.graph.num_timesteps
        return self.edge_window_count(u, v, 0, t_len - 1) / t_len

    # ------------------------------------------------------------------
    # batched vectorized kernels (the serving path)
    # ------------------------------------------------------------------
    # Contract, shared by all four kernels: queries arrive as parallel
    # column arrays, results come back as arrays in query order,
    # bit-identical to the per-query loop (the _reference_batch_*
    # twins below, pinned by tests/workloads/test_batch.py).  Columns
    # are validated vectorized up front; an empty batch returns empty
    # results.  Work is grouped by timestep internally, so a batch
    # touching k distinct timesteps costs k plan lookups, not |batch|.

    def batch_degrees(
        self, nodes, ts, direction: str = "out"
    ) -> np.ndarray:
        """Degrees of ``nodes[i]`` at ``ts[i]``, one int64 per query.

        ``direction`` is ``"out"``, ``"in"`` or ``"total"`` (out + in;
        a node on both sides of the same edge counts twice, matching
        ``GraphSnapshot.degrees``).
        """
        if direction not in ("out", "in", "total"):
            raise ValueError(f"unknown direction {direction!r}")
        nodes = _as_query_column(nodes, "nodes")
        ts = _as_query_column(ts, "ts")
        if nodes.size != ts.size:
            raise ValueError(
                f"column lengths differ: {nodes.size}/{ts.size}"
            )
        self._check_columns({"nodes": nodes}, {"ts": ts})
        out = np.zeros(nodes.size, dtype=np.int64)
        for t, sel in self._timestep_groups(ts):
            group = nodes[sel]
            if direction in ("out", "total"):
                indptr, _ = self.plans.csr(t)
                out[sel] += indptr[group + 1] - indptr[group]
            if direction in ("in", "total"):
                indptr, _ = self.plans.csc(t)
                out[sel] += indptr[group + 1] - indptr[group]
        return out

    def batch_neighbors(
        self, nodes, ts, direction: str = "out"
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Neighbour lists of ``nodes[i]`` at ``ts[i]``, CSR-packed.

        Returns ``(offsets, neighbors)``: query ``i``'s sorted
        neighbour ids are ``neighbors[offsets[i]:offsets[i + 1]]`` —
        the same packing the store uses, so a whole batch's results
        are two flat arrays instead of |batch| Python lists.
        """
        if direction not in ("out", "in"):
            raise ValueError(f"unknown direction {direction!r}")
        nodes = _as_query_column(nodes, "nodes")
        ts = _as_query_column(ts, "ts")
        if nodes.size != ts.size:
            raise ValueError(
                f"column lengths differ: {nodes.size}/{ts.size}"
            )
        self._check_columns({"nodes": nodes}, {"ts": ts})
        plan = self.plans.csr if direction == "out" else self.plans.csc
        counts = np.zeros(nodes.size, dtype=np.int64)
        groups = list(self._timestep_groups(ts))
        for t, sel in groups:
            indptr, _ = plan(t)
            counts[sel] = indptr[nodes[sel] + 1] - indptr[nodes[sel]]
        offsets = np.zeros(nodes.size + 1, dtype=np.int64)
        np.cumsum(counts, out=offsets[1:])
        neighbors = np.empty(offsets[-1], dtype=np.int64)
        for t, sel in groups:
            indptr, indices = plan(t)
            group = nodes[sel]
            starts = indptr[group]
            lens = indptr[group + 1] - starts
            total = int(lens.sum())
            if not total:
                continue
            # per-element offset within its own query, 0..len-1
            ends = np.cumsum(lens)
            intra = np.arange(total, dtype=np.int64) - np.repeat(
                ends - lens, lens
            )
            neighbors[np.repeat(offsets[sel], lens) + intra] = indices[
                np.repeat(starts, lens) + intra
            ]
        return offsets, neighbors

    def batch_has_edge(self, src, dst, ts) -> np.ndarray:
        """Existence of ``src[i] -> dst[i]`` at ``ts[i]``, one bool per query.

        One ``np.searchsorted`` against the store's sorted composite
        ``(t, src, dst)`` keys answers the whole batch — no per-query
        row slicing at all.
        """
        src = _as_query_column(src, "src")
        dst = _as_query_column(dst, "dst")
        ts = _as_query_column(ts, "ts")
        if not (src.size == dst.size == ts.size):
            raise ValueError(
                f"column lengths differ: {src.size}/{dst.size}/{ts.size}"
            )
        self._check_columns({"src": src, "dst": dst}, {"ts": ts})
        if not src.size:
            return np.zeros(0, dtype=bool)
        keys = self.plans.temporal_keys()
        n = self.graph.num_nodes
        wanted = (ts * n + src) * n + dst
        pos = np.searchsorted(keys, wanted)
        hit = pos < keys.size
        hit[hit] = keys[pos[hit]] == wanted[hit]
        return hit

    def batch_edge_window_counts(self, src, dst, t0, t1) -> np.ndarray:
        """Snapshots in ``[t0[i], t1[i]]`` containing ``src[i] -> dst[i]``.

        The temporal-range kernel: against the cached ``(src, dst,
        t)``-sorted edge keys, each query is two binary searches —
        O(log M) instead of the per-query path's O(window) CSR probes.
        """
        src = _as_query_column(src, "src")
        dst = _as_query_column(dst, "dst")
        t0 = _as_query_column(t0, "t0")
        t1 = _as_query_column(t1, "t1")
        if not (src.size == dst.size == t0.size == t1.size):
            raise ValueError(
                f"column lengths differ: "
                f"{src.size}/{dst.size}/{t0.size}/{t1.size}"
            )
        self._check_columns(
            {"src": src, "dst": dst}, {"t0": t0, "t1": t1}
        )
        if np.any(t1 < t0):
            raise ValueError("empty time window: t1 < t0")
        if not src.size:
            return np.zeros(0, dtype=np.int64)
        keys = self.plans.pair_keys()
        t_len = self.graph.num_timesteps
        pair = (src * self.graph.num_nodes + dst) * t_len
        lo = np.searchsorted(keys, pair + t0, side="left")
        hi = np.searchsorted(keys, pair + t1, side="right")
        return hi - lo

    def batch_attribute_range_counts(self, ts, dims, lo, hi) -> np.ndarray:
        """Nodes with attribute ``dims[i]`` in ``[lo[i], hi[i]]`` at ``ts[i]``.

        The counting form of :meth:`attribute_range` (cardinality
        only, no id list): per distinct ``(t, dim)`` pair the cached
        sorted attribute order is probed with two vectorized
        ``searchsorted`` calls covering every query of that group.
        """
        ts = _as_query_column(ts, "ts")
        dims = _as_query_column(dims, "dims")
        lo = np.atleast_1d(np.asarray(lo, dtype=np.float64))
        hi = np.atleast_1d(np.asarray(hi, dtype=np.float64))
        if not (ts.size == dims.size == lo.size == hi.size):
            raise ValueError(
                f"column lengths differ: "
                f"{ts.size}/{dims.size}/{lo.size}/{hi.size}"
            )
        self._check_columns({}, {"ts": ts})
        if dims.size and (
            dims.min() < 0 or dims.max() >= self.graph.num_attributes
        ):
            raise IndexError(
                f"dims contains attributes out of range "
                f"0..{self.graph.num_attributes - 1}"
            )
        out = np.zeros(ts.size, dtype=np.int64)
        # group by composite (t, dim) key; both ranges are small ints
        composite = ts * max(self.graph.num_attributes, 1) + dims
        for _, sel in self._timestep_groups(composite):
            t, dim = int(ts[sel[0]]), int(dims[sel[0]])
            order = self.plans.attribute_order(t, dim)
            sorted_vals = self.graph.store.attributes[t, :, dim][order]
            out[sel] = np.searchsorted(
                sorted_vals, hi[sel], side="right"
            ) - np.searchsorted(sorted_vals, lo[sel], side="left")
        return out

    # ------------------------------------------------------------------
    # batched traversal kernels (frontier-vectorized multi-source BFS)
    # ------------------------------------------------------------------
    # Both kernels share one frontier representation: a flat int64
    # array of packed ``query_id * N + node`` keys carrying EVERY
    # query's frontier for the current level.  A level is one
    # ``np.repeat`` expansion over CSR indptr slices followed by a
    # dedup against a flat visited bitmap indexed by the same packed
    # keys — so a whole batch advances in a handful of kernel passes
    # with zero per-query Python.  Per-query state (visited sets,
    # remaining hop budgets, time windows) lives in the key packing,
    # the bitmap, and boolean masks, never in Python sets.

    def batch_two_hop(self, nodes, ts, ks=2) -> np.ndarray:
        """Nodes within ``ks[i]`` directed hops of ``nodes[i]`` at ``ts[i]``.

        The counting form of :meth:`two_hop_neighbors` /
        :meth:`k_hop` (cardinality only, source excluded), answered
        for the whole batch by frontier-vectorized multi-source BFS.
        ``ks`` broadcasts a scalar hop count (default 2, the TWO_HOP
        workload class) or accepts one hop budget per query; queries
        sharing a timestep share CSR plan lookups and kernel passes
        regardless of batch size.
        """
        nodes = _as_query_column(nodes, "nodes")
        ts = _as_query_column(ts, "ts")
        ks = np.asarray(ks, dtype=np.int64)
        if ks.ndim == 0:
            ks = np.full(nodes.size, int(ks), dtype=np.int64)
        if ks.ndim != 1:
            raise ValueError("ks must be one-dimensional")
        if not (nodes.size == ts.size == ks.size):
            raise ValueError(
                f"column lengths differ: {nodes.size}/{ts.size}/{ks.size}"
            )
        self._check_columns({"nodes": nodes}, {"ts": ts})
        if ks.size and ks.min() < 0:
            raise ValueError("k must be >= 0")
        out = np.zeros(nodes.size, dtype=np.int64)
        n = self.graph.num_nodes
        for t, sel in self._timestep_groups(ts):
            indptr, indices = self.plans.csr(t)
            # packed (local query, node) keys; local qids are distinct
            # per group, so sources stay disjoint even when node /
            # timestep repeat across queries.  The visited set is a
            # flat bitmap over the same key space: O(1) membership, no
            # sorted merges on the hot path.
            group_ks = ks[sel]
            keys = np.arange(sel.size, dtype=np.int64) * n + nodes[sel]
            visited = np.zeros(sel.size * n, dtype=bool)
            visited[keys] = True
            frontier = keys
            max_k = int(group_ks.max())
            level = 0
            while frontier.size and level < max_k:
                level += 1
                # queries whose hop budget is spent stop expanding
                active = frontier[group_ks[frontier // n] >= level]
                if not active.size:
                    break
                nxt = _expand_frontier(active, indptr, indices, n)
                fresh = nxt[~visited[nxt]] if nxt.size else nxt
                if not fresh.size:
                    break
                visited[fresh] = True
                frontier = _dedup_keys(fresh)
            counts = visited.reshape(-1, n).sum(axis=1, dtype=np.int64)
            out[sel] = counts - 1  # visited includes the source
        return out

    def batch_temporal_reach(self, src, dst, t0, t1) -> np.ndarray:
        """Time-respecting reachability of ``src[i] -> dst[i]`` over
        ``[t0[i], t1[i]]``, one bool per query.

        The batched twin of :meth:`temporal_reachable`: the same
        packed-key frontier advances across timesteps — level ``t``
        expands every in-window unresolved query's reached set to
        saturation against timestep ``t``'s CSR plan before moving to
        ``t + 1`` — so queries with overlapping windows share plan
        lookups and kernel passes.  Resolved queries (target reached,
        or ``src == dst``) drop out of the frontier immediately.
        """
        src = _as_query_column(src, "src")
        dst = _as_query_column(dst, "dst")
        t0 = _as_query_column(t0, "t0")
        t1 = _as_query_column(t1, "t1")
        if not (src.size == dst.size == t0.size == t1.size):
            raise ValueError(
                f"column lengths differ: "
                f"{src.size}/{dst.size}/{t0.size}/{t1.size}"
            )
        self._check_columns(
            {"src": src, "dst": dst}, {"t0": t0, "t1": t1}
        )
        if np.any(t1 < t0):
            raise ValueError("empty time window: t1 < t0")
        out = src == dst
        if not src.size or out.all():
            return out
        n = self.graph.num_nodes
        qid_base = np.arange(src.size, dtype=np.int64) * n
        # flat visited bitmap over the packed (query, node) key space:
        # O(1) membership for dedup and the final target probe
        visited = np.zeros(src.size * n, dtype=bool)
        visited[qid_base + src] = True
        targets = qid_base + dst
        for t in range(int(t0.min()), int(t1.max()) + 1):
            active = np.flatnonzero(~out & (t0 <= t) & (t <= t1))
            if not active.size:
                continue
            indptr, indices = self.plans.csr(t)
            # each snapshot's edges are concurrent: restart the
            # frontier from everything the active queries have
            # reached, then expand to fixpoint within the step
            rows, cols = np.nonzero(visited.reshape(-1, n)[active])
            frontier = active[rows] * n + cols
            while frontier.size:
                nxt = _expand_frontier(frontier, indptr, indices, n)
                fresh = nxt[~visited[nxt]] if nxt.size else nxt
                if not fresh.size:
                    break
                visited[fresh] = True
                frontier = _dedup_keys(fresh)
            out[active] = visited[targets[active]]
        return out

    def _timestep_groups(self, ts: np.ndarray):
        """Yield ``(t, index_array)`` per distinct timestep in ``ts``.

        Grouping is by sorted unique timestep, so a mixed-timestep
        batch costs one plan lookup per *distinct* timestep and the
        per-group work stays fully vectorized.
        """
        if not ts.size:
            return
        order = np.argsort(ts, kind="stable")
        sorted_ts = ts[order]
        boundaries = np.flatnonzero(
            np.r_[True, sorted_ts[1:] != sorted_ts[:-1]]
        )
        for start, stop in zip(
            boundaries, np.r_[boundaries[1:], sorted_ts.size]
        ):
            yield int(sorted_ts[start]), order[start:stop]

    # ------------------------------------------------------------------
    # per-query twins of the batched kernels (parity anchors)
    # ------------------------------------------------------------------
    def _reference_batch_degrees(
        self, nodes, ts, direction: str = "out"
    ) -> np.ndarray:
        nodes = _as_query_column(nodes, "nodes")
        ts = _as_query_column(ts, "ts")
        out = []
        for v, t in zip(nodes.tolist(), ts.tolist()):
            if direction == "out":
                out.append(len(self.out_neighbors(v, t)))
            elif direction == "in":
                out.append(len(self.in_neighbors(v, t)))
            else:
                out.append(
                    len(self.out_neighbors(v, t))
                    + len(self.in_neighbors(v, t))
                )
        return np.asarray(out, dtype=np.int64).reshape(-1)

    def _reference_batch_neighbors(
        self, nodes, ts, direction: str = "out"
    ) -> Tuple[np.ndarray, np.ndarray]:
        nodes = _as_query_column(nodes, "nodes")
        ts = _as_query_column(ts, "ts")
        lookup = self.out_neighbors if direction == "out" else self.in_neighbors
        rows = [lookup(v, t) for v, t in zip(nodes.tolist(), ts.tolist())]
        offsets = np.zeros(len(rows) + 1, dtype=np.int64)
        np.cumsum([len(r) for r in rows], out=offsets[1:])
        neighbors = np.asarray(
            [x for row in rows for x in row], dtype=np.int64
        ).reshape(-1)
        return offsets, neighbors

    def _reference_batch_has_edge(self, src, dst, ts) -> np.ndarray:
        src = _as_query_column(src, "src")
        dst = _as_query_column(dst, "dst")
        ts = _as_query_column(ts, "ts")
        return np.asarray(
            [
                self.has_edge(u, v, t)
                for u, v, t in zip(src.tolist(), dst.tolist(), ts.tolist())
            ],
            dtype=bool,
        ).reshape(-1)

    def _reference_batch_attribute_range_counts(
        self, ts, dims, lo, hi
    ) -> np.ndarray:
        ts = _as_query_column(ts, "ts")
        dims = _as_query_column(dims, "dims")
        lo = np.atleast_1d(np.asarray(lo, dtype=np.float64))
        hi = np.atleast_1d(np.asarray(hi, dtype=np.float64))
        return np.asarray(
            [
                len(self.attribute_range(t, d, a, b))
                for t, d, a, b in zip(
                    ts.tolist(), dims.tolist(), lo.tolist(), hi.tolist()
                )
            ],
            dtype=np.int64,
        ).reshape(-1)

    def _reference_batch_edge_window_counts(self, src, dst, t0, t1) -> np.ndarray:
        src = _as_query_column(src, "src")
        dst = _as_query_column(dst, "dst")
        t0 = _as_query_column(t0, "t0")
        t1 = _as_query_column(t1, "t1")
        return np.asarray(
            [
                self.edge_window_count(u, v, a, b)
                for u, v, a, b in zip(
                    src.tolist(), dst.tolist(), t0.tolist(), t1.tolist()
                )
            ],
            dtype=np.int64,
        ).reshape(-1)

    def _reference_batch_two_hop(self, nodes, ts, ks=2) -> np.ndarray:
        nodes = _as_query_column(nodes, "nodes")
        ts = _as_query_column(ts, "ts")
        ks = np.asarray(ks, dtype=np.int64)
        if ks.ndim == 0:
            ks = np.full(nodes.size, int(ks), dtype=np.int64)
        return np.asarray(
            [
                len(self.k_hop(v, t, k))
                for v, t, k in zip(
                    nodes.tolist(), ts.tolist(), ks.tolist()
                )
            ],
            dtype=np.int64,
        ).reshape(-1)

    def _reference_batch_temporal_reach(self, src, dst, t0, t1) -> np.ndarray:
        src = _as_query_column(src, "src")
        dst = _as_query_column(dst, "dst")
        t0 = _as_query_column(t0, "t0")
        t1 = _as_query_column(t1, "t1")
        return np.asarray(
            [
                self.temporal_reachable(u, v, a, b)
                for u, v, a, b in zip(
                    src.tolist(), dst.tolist(), t0.tolist(), t1.tolist()
                )
            ],
            dtype=bool,
        ).reshape(-1)
