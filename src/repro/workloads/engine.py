"""In-memory graph query engine over dynamic attributed graphs.

A deliberately small but real engine: per-snapshot CSR adjacency
indexes (forward and reverse) built lazily on first touch, plus
per-snapshot sorted attribute indexes for range scans.  Query methods
cover the access patterns graph databases are benchmarked on —
point lookups, traversals, pattern counting, analytics and temporal
reachability.

Indexes are derived from the graph's canonical columnar store: the
forward CSR is a zero-copy view of the store's ``(t, src, dst)``-sorted
columns and the reverse index one O(M_t log M_t) re-sort — no dense
``(N, N)`` matrix is ever touched.
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

import numpy as np

from repro.graph import properties as props
from repro.graph.dynamic import DynamicAttributedGraph


class _SnapshotIndex:
    """CSR forward/reverse adjacency for one snapshot.

    A thin facade over the store's per-timestep ``csr_at``/``csc_at``
    indexes (shared caches, zero-copy); the reverse index costs an
    O(M log M) re-sort and is only built on the first in-neighbour
    query.
    """

    __slots__ = ("_store", "_t", "fwd_indptr", "fwd_indices",
                 "rev_indptr", "rev_indices")

    def __init__(self, store, t: int):
        self._store = store
        self._t = t
        self.fwd_indptr, self.fwd_indices = store.csr_at(t)
        self.rev_indptr = None
        self.rev_indices = None

    def out_neighbors(self, v: int) -> np.ndarray:
        return self.fwd_indices[self.fwd_indptr[v]:self.fwd_indptr[v + 1]]

    def in_neighbors(self, v: int) -> np.ndarray:
        if self.rev_indptr is None:
            self.rev_indptr, self.rev_indices = self._store.csc_at(self._t)
        return self.rev_indices[self.rev_indptr[v]:self.rev_indptr[v + 1]]

    def has_edge(self, u: int, v: int) -> bool:
        row = self.out_neighbors(u)
        pos = np.searchsorted(row, v)
        return bool(pos < len(row) and row[pos] == v)


class GraphQueryEngine:
    """Query engine over a :class:`DynamicAttributedGraph`.

    Indexes are built lazily per snapshot and cached; the engine never
    mutates the underlying graph.
    """

    def __init__(self, graph: DynamicAttributedGraph):
        self.graph = graph
        self._snapshot_index: Dict[int, _SnapshotIndex] = {}
        self._attr_order: Dict[Tuple[int, int], np.ndarray] = {}

    @classmethod
    def from_event_stream(
        cls,
        events,
        num_nodes: int,
        num_timesteps: int,
        *,
        chunk_events: int = 65536,
        memory_budget_bytes: int | None = None,
        attributes: np.ndarray | None = None,
    ) -> "GraphQueryEngine":
        """Build an engine straight from a ``(src, dst, t)`` event stream.

        The generated-then-scored pipeline entry point: events fold
        into the canonical columnar store through
        :func:`repro.graph.streams.ingest_stream` — bounded-memory
        chunked canonicalization, so the pipeline never holds more
        than one chunk plus the store — and the engine's CSR indexes
        derive lazily from that store.  ``events`` accepts the same
        forms as :func:`ingest_stream` (an array triple, an iterable
        of scalar triples, or an iterable of array batches).
        """
        from repro.graph.streams import ingest_stream

        store = ingest_stream(
            events,
            num_nodes,
            num_timesteps,
            chunk_events=chunk_events,
            memory_budget_bytes=memory_budget_bytes,
            attributes=attributes,
        )
        return cls(DynamicAttributedGraph.from_store(store))

    # ------------------------------------------------------------------
    def _check_t(self, t: int) -> None:
        if not 0 <= t < self.graph.num_timesteps:
            raise IndexError(
                f"timestep {t} out of range 0..{self.graph.num_timesteps - 1}"
            )

    def _check_v(self, v: int) -> None:
        if not 0 <= v < self.graph.num_nodes:
            raise IndexError(
                f"node {v} out of range 0..{self.graph.num_nodes - 1}"
            )

    def _index(self, t: int) -> _SnapshotIndex:
        self._check_t(t)
        if t not in self._snapshot_index:
            # graph.store derives the columnar form once (cached on the
            # graph); per-timestep CSR/CSC caches live on the store
            self._snapshot_index[t] = _SnapshotIndex(self.graph.store, t)
        return self._snapshot_index[t]

    # ------------------------------------------------------------------
    # point lookups and traversals
    # ------------------------------------------------------------------
    def out_neighbors(self, v: int, t: int) -> List[int]:
        """Out-neighbour ids of ``v`` in snapshot ``t`` (sorted)."""
        self._check_v(v)
        return self._index(t).out_neighbors(v).tolist()

    def in_neighbors(self, v: int, t: int) -> List[int]:
        """In-neighbour ids of ``v`` in snapshot ``t`` (sorted)."""
        self._check_v(v)
        return self._index(t).in_neighbors(v).tolist()

    def has_edge(self, u: int, v: int, t: int) -> bool:
        """Whether the directed edge ``u -> v`` exists in snapshot ``t``."""
        self._check_v(u)
        self._check_v(v)
        return self._index(t).has_edge(u, v)

    def k_hop(self, v: int, t: int, k: int, directed: bool = True) -> Set[int]:
        """Nodes reachable from ``v`` within ``k`` hops in snapshot ``t``.

        ``v`` itself is excluded.  ``directed=False`` traverses the
        symmetrized graph.
        """
        self._check_v(v)
        if k < 0:
            raise ValueError("k must be >= 0")
        idx = self._index(t)
        frontier = {v}
        seen = {v}
        for _ in range(k):
            nxt: Set[int] = set()
            for u in frontier:
                nxt.update(idx.out_neighbors(u).tolist())
                if not directed:
                    nxt.update(idx.in_neighbors(u).tolist())
            frontier = nxt - seen
            if not frontier:
                break
            seen |= frontier
        seen.discard(v)
        return seen

    # ------------------------------------------------------------------
    # pattern / analytic queries
    # ------------------------------------------------------------------
    def triangle_count(self, t: int) -> int:
        """Undirected triangle count of snapshot ``t`` (CSR kernel)."""
        self._check_t(t)
        return props.triangle_count(self.graph[t])

    def degree_topk(self, t: int, k: int, direction: str = "out") -> List[int]:
        """The ``k`` highest-degree node ids (ties by id, ascending)."""
        self._check_t(t)
        if k < 0:
            raise ValueError("k must be >= 0")
        snap = self.graph[t]
        if direction == "out":
            deg = snap.out_degrees()
        elif direction == "in":
            deg = snap.in_degrees()
        elif direction == "total":
            deg = snap.degrees()
        else:
            raise ValueError(f"unknown direction {direction!r}")
        order = np.lexsort((np.arange(len(deg)), -deg))
        return order[:k].tolist()

    def attribute_range(
        self, t: int, dim: int, lo: float, hi: float
    ) -> List[int]:
        """Node ids with attribute ``dim`` in ``[lo, hi]`` at ``t`` (sorted index scan)."""
        self._check_t(t)
        if not 0 <= dim < self.graph.num_attributes:
            raise IndexError(
                f"attribute {dim} out of range 0..{self.graph.num_attributes - 1}"
            )
        key = (t, dim)
        values = self.graph[t].attributes[:, dim]
        if key not in self._attr_order:
            self._attr_order[key] = np.argsort(values, kind="stable")
        order = self._attr_order[key]
        sorted_vals = values[order]
        left = np.searchsorted(sorted_vals, lo, side="left")
        right = np.searchsorted(sorted_vals, hi, side="right")
        return sorted(order[left:right].tolist())

    # ------------------------------------------------------------------
    # temporal queries
    # ------------------------------------------------------------------
    def temporal_reachable(
        self, u: int, v: int, t0: int, t1: int
    ) -> bool:
        """Time-respecting reachability: can ``u`` reach ``v`` using edges
        of snapshots ``t0..t1`` in non-decreasing snapshot order?

        At each snapshot the frontier may expand through any number of
        that snapshot's edges (edges within one window are concurrent).
        """
        self._check_v(u)
        self._check_v(v)
        self._check_t(t0)
        self._check_t(t1)
        if t1 < t0:
            raise ValueError(f"empty time window [{t0}, {t1}]")
        if u == v:
            return True
        reached = {u}
        for t in range(t0, t1 + 1):
            idx = self._index(t)
            frontier = set(reached)
            while frontier:
                nxt: Set[int] = set()
                for w in frontier:
                    for x in idx.out_neighbors(w).tolist():
                        if x not in reached:
                            nxt.add(x)
                if v in nxt:
                    return True
                reached |= nxt
                frontier = nxt
        return v in reached

    def edge_persistence(self, u: int, v: int) -> float:
        """Fraction of snapshots containing the edge ``u -> v``."""
        self._check_v(u)
        self._check_v(v)
        hits = sum(
            1 for t in range(self.graph.num_timesteps)
            if self._index(t).has_edge(u, v)
        )
        return hits / self.graph.num_timesteps
