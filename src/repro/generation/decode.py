"""Shard-local MixBernoulli decoding on plain, picklable arrays.

A shard evaluates the θ head for its row range ``[lo, hi)`` against
all ``N`` destination columns and samples that range's adjacency rows.
Process-pool workers cannot cheaply receive autodiff modules, so the
head is mirrored into :class:`PlainHead` — bare weight/bias ndarrays
with the same attribute layout the fused kernels in
``repro.core.generator`` traverse — and the whole shard's work is
packed into one :class:`ShardTask` (everything a worker needs,
picklable, no model object).

Numerics are byte-for-byte those of
:meth:`~repro.core.generator.MixBernoulliSampler.sample_edges`: the
same row-blocked pairwise kernel, the same inverse-CDF component draw,
and RNG slices of the same master stream (see
``repro.generation.sharding``), so a shard's ``(src, dst)`` output
equals the corresponding row range of the monolithic decode exactly.
Per-shard peak memory is the ``(block, N)`` pairwise working set —
never an ``(N, N)`` buffer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.autodiff.tensor import Tensor
from repro.core.generator import (
    MixBernoulliSampler,
    _first_layer_projection,
    _np_sigmoid,
    _pairwise_head_block,
)
from repro.generation.sharding import sliced_generator

__all__ = ["PlainHead", "ShardTask", "decode_shard", "prepare_decode"]


class _PlainParam:
    """Bare ndarray with the ``.data`` attribute the kernels expect."""

    __slots__ = ("data",)

    def __init__(self, data: np.ndarray):
        self.data = data


class _PlainLayer:
    """Weight/bias pair mirroring ``repro.nn.Linear``'s attribute layout."""

    __slots__ = ("weight", "bias")

    def __init__(self, weight: np.ndarray, bias: Optional[np.ndarray]):
        self.weight = _PlainParam(weight)
        self.bias = None if bias is None else _PlainParam(bias)


class PlainHead:
    """Picklable mirror of an ``repro.nn.MLP``: layers + activation names.

    Exposes exactly the attributes
    :func:`repro.core.generator._pairwise_head_block` traverses
    (``layers[i].weight.data``, ``layers[i].bias.data``,
    ``activation``, ``out_activation``), so the fused pairwise kernel
    runs unmodified on either representation.
    """

    __slots__ = ("layers", "activation", "out_activation")

    def __init__(self, layers, activation: str, out_activation: str):
        self.layers = layers
        self.activation = activation
        self.out_activation = out_activation

    @classmethod
    def from_mlp(cls, mlp) -> "PlainHead":
        """Snapshot an MLP's parameters into plain arrays (no copy)."""
        layers = [
            _PlainLayer(
                layer.weight.data,
                None if layer.bias is None else layer.bias.data,
            )
            for layer in mlp.layers
        ]
        return cls(layers, mlp.activation, mlp.out_activation)

    def __getstate__(self):
        return (
            [(l.weight.data, None if l.bias is None else l.bias.data)
             for l in self.layers],
            self.activation,
            self.out_activation,
        )

    def __setstate__(self, state):
        raw, activation, out_activation = state
        self.layers = [_PlainLayer(w, b) for w, b in raw]
        self.activation = activation
        self.out_activation = out_activation


@dataclass
class ShardTask:
    """Everything one shard needs to decode rows ``[lo, hi)``.

    Fields
    ------
    lo, hi:
        The shard's row range within ``[0, N)``.
    num_nodes:
        Destination-column count ``N``.
    num_components:
        Mixture size ``K``.
    head:
        :class:`PlainHead` mirror of the θ MLP.
    proj:
        ``(N, h)`` float64 first-layer projection of the node states
        (shared by every shard; the pairwise kernel needs all columns).
    alpha:
        ``(hi - lo, K)`` float64 normalized mixing weights for the
        shard's rows.
    rng_state:
        Master PCG64 ``bit_generator.state`` captured before the
        decode; the shard derives its stream slices from it.
    block:
        Row-block height for the pairwise working set.
    """

    lo: int
    hi: int
    num_nodes: int
    num_components: int
    head: PlainHead
    proj: np.ndarray
    alpha: np.ndarray
    rng_state: dict
    block: int


def decode_shard(task: ShardTask) -> Tuple[np.ndarray, np.ndarray]:
    """Sample the adjacency rows of one shard.

    Returns ``(src, dst)`` int64 columns in CSR order with absolute
    row indices — the exact sub-columns the monolithic
    ``sample_edges`` would emit for rows ``[lo, hi)``.
    """
    lo, hi, n = task.lo, task.hi, task.num_nodes
    rows_here = hi - lo
    if rows_here <= 0:
        return np.zeros(0, np.int64), np.zeros(0, np.int64)
    # component draw: rows [lo, hi) of the master's (N, 1) uniform block
    u = sliced_generator(task.rng_state, lo).random((rows_here, 1))
    cdf = np.cumsum(task.alpha, axis=1)
    components = (u > cdf).sum(axis=1).clip(0, task.num_components - 1)
    # edge draw: rows [lo, hi) of the master's (N, N) uniform block,
    # drawn incrementally per row block (rows are contiguous in the
    # stream, so chunked draws match the monolithic bulk draw exactly)
    edge_gen = sliced_generator(task.rng_state, n + lo * n)
    srcs: List[np.ndarray] = []
    dsts: List[np.ndarray] = []
    for blo in range(lo, hi, task.block):
        bhi = min(blo + task.block, hi)
        edge_u = edge_gen.random((bhi - blo, n))
        theta = _np_sigmoid(
            _pairwise_head_block(task.head, task.proj, blo, bhi)
        ).reshape(bhi - blo, n, task.num_components)
        row_theta = np.take_along_axis(
            theta, components[blo - lo:bhi - lo, None, None], axis=2
        )[:, :, 0]
        hit = edge_u < row_theta
        diag = np.arange(blo, bhi)
        hit[diag - blo, diag] = False
        rows, cols = np.nonzero(hit)
        srcs.append(rows.astype(np.int64) + blo)
        dsts.append(cols.astype(np.int64))
    return (
        np.concatenate(srcs) if srcs else np.zeros(0, np.int64),
        np.concatenate(dsts) if dsts else np.zeros(0, np.int64),
    )


def prepare_decode(
    sampler: MixBernoulliSampler,
    s,
    block_size: Optional[int] = None,
) -> Tuple[np.ndarray, np.ndarray, int]:
    """Coordinator-side prologue shared by every shard.

    Computes the ``(N, K)`` normalized mixing weights α (closed-form
    O(N log N) pooling when the head admits it) and the ``(N, h)``
    θ-head first-layer projection — the only O(N·d·h) matmul of the
    decode, done once rather than once per shard.  Returns
    ``(alpha, proj, block)``.
    """
    s_np = np.asarray(
        s.data if isinstance(s, Tensor) else s, dtype=np.float64
    )
    n = s_np.shape[0]
    block = sampler._decode_block_rows(n, block_size)
    alpha = sampler._mixture_weights_np(s_np, block)
    alpha = alpha / alpha.sum(axis=1, keepdims=True)
    proj = _first_layer_projection(sampler.f_theta, s_np)
    return alpha, proj, block
