"""Merging per-shard edge columns back into canonical store order.

Shards own contiguous, ascending row ranges and each emits its rows in
CSR order, so within one timestep the k shard outputs are k sorted
runs over *disjoint, ordered* key ranges: the canonical merge is a
single concatenation (:func:`merge_step_columns`), verified cheaply at
the run boundaries.

The general case — k canonically-sorted ``(src, dst, t)`` runs whose
key ranges interleave (streaming ingestion chunks, shard outputs from
a custom non-contiguous plan) — is handled by the vectorized k-way
merge :func:`repro.graph.store.merge_canonical_runs`, re-exported here
for generation consumers.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from repro.graph.store import merge_canonical_runs  # noqa: F401  (re-export)

__all__ = ["merge_step_columns", "merge_canonical_runs"]


def merge_step_columns(
    parts: Sequence[Tuple[np.ndarray, np.ndarray]],
) -> Tuple[np.ndarray, np.ndarray]:
    """Merge per-shard ``(src, dst)`` outputs of one timestep.

    ``parts`` must be ordered by shard (ascending row ranges); each
    part is CSR-ordered within its range, so the merged columns are in
    canonical ``(src, dst)`` order by construction.  Boundary rows are
    checked (O(k)) to catch mis-ordered plans early.
    """
    kept: List[Tuple[np.ndarray, np.ndarray]] = [
        (s, d) for s, d in parts if s.size
    ]
    if not kept:
        return np.zeros(0, np.int64), np.zeros(0, np.int64)
    for (prev_s, _), (next_s, _) in zip(kept[:-1], kept[1:]):
        if prev_s[-1] >= next_s[0]:
            raise ValueError(
                "shard outputs overlap or are out of order "
                f"(row {int(prev_s[-1])} >= row {int(next_s[0])})"
            )
    if len(kept) == 1:
        return kept[0]
    return (
        np.concatenate([s for s, _ in kept]),
        np.concatenate([d for _, d in kept]),
    )
