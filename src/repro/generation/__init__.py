"""Sharded, streaming-friendly generation on the columnar edge-store.

``repro.generation`` scales :meth:`VRDAG.generate
<repro.core.model.VRDAG.generate>` from one monolithic in-process
decode to a partitioned one: the node rows of each timestep's
MixBernoulli structure decode are split into contiguous shards, each
shard samples its adjacency rows from a deterministic slice of the
master RNG stream, and the per-shard edge columns merge back into one
:class:`~repro.graph.store.TemporalEdgeStoreBuilder` in canonical
order.  Shard count and executor (serial / thread pool / process
pool) are pure deployment knobs — every configuration produces the
same graph bit-for-bit for a given seed.

Public API
----------
:func:`generate_sharded`
    One-call sharded rollout of a trained model.
:class:`ShardedStructureDecoder`
    The reusable ``structure_decoder`` hook (pool lifecycle included).
:class:`ShardPlan`
    Balanced contiguous row partitions.
:func:`merge_step_columns` / :func:`merge_canonical_runs`
    Vectorized merging of per-shard / per-chunk edge columns.

Design notes and determinism guarantees: ``docs/architecture.md``.
"""

from repro.generation.decode import PlainHead, ShardTask, decode_shard, prepare_decode
from repro.generation.merge import merge_canonical_runs, merge_step_columns
from repro.generation.runner import (
    EXECUTORS,
    ShardedStructureDecoder,
    generate_sharded,
)
from repro.generation.sharding import (
    ShardPlan,
    advance_past_decode,
    decode_draw_count,
    sliced_generator,
)

__all__ = [
    "EXECUTORS",
    "PlainHead",
    "ShardPlan",
    "ShardTask",
    "ShardedStructureDecoder",
    "advance_past_decode",
    "decode_draw_count",
    "decode_shard",
    "generate_sharded",
    "merge_canonical_runs",
    "merge_step_columns",
    "prepare_decode",
    "sliced_generator",
]
