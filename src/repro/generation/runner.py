"""Sharded generation: the decoder hook, executors and entry point.

:class:`ShardedStructureDecoder` plugs into
:meth:`repro.core.model.VRDAG.generate` via its ``structure_decoder``
hook: Algorithm 1 (latent rollout, attribute decoding, recurrence)
stays in the model, while each timestep's MixBernoulli structure
decode — the O(N²) hot path — is partitioned across shards and run on
one of three executors:

* ``"serial"`` — in-process loop; zero overhead, the default.
* ``"thread"`` — ``concurrent.futures`` thread pool; the pairwise
  kernels are NumPy matmuls that release the GIL, so threads scale on
  multi-core hosts with zero serialization cost.
* ``"process"`` — ``multiprocessing`` pool (fork where available);
  full core isolation at the cost of pickling each step's ``(N, h)``
  projection to the workers.

Every executor and every shard count produces **bit-identical**
graphs: shards consume disjoint slices of the master RNG stream (see
``repro.generation.sharding``), so ``n_shards=1`` equals
``VRDAG.generate`` exactly and ``n_shards=k`` equals ``n_shards=1``
exactly.  Determinism is therefore a property of the seed alone —
shard count and executor are pure deployment knobs.
"""

from __future__ import annotations

import os
from typing import Callable, List, Optional, Tuple

import numpy as np

from repro.core.generator import MixBernoulliSampler
from repro.generation.decode import PlainHead, ShardTask, decode_shard, prepare_decode
from repro.generation.merge import merge_step_columns
from repro.generation.sharding import ShardPlan, advance_past_decode
from repro.profiling import profiler

__all__ = ["ShardedStructureDecoder", "generate_sharded", "EXECUTORS"]

#: Supported executor names, in increasing isolation order.
EXECUTORS = ("serial", "thread", "process")


class ShardedStructureDecoder:
    """Drop-in ``structure_decoder`` running the decode across shards.

    Parameters
    ----------
    plan:
        The row partition (:meth:`ShardPlan.balanced` for the common
        case).
    executor:
        One of :data:`EXECUTORS`.  Pools are created lazily on the
        first decode and reused across timesteps; use the instance as
        a context manager (or call :meth:`close`) to release them.
    max_workers:
        Pool width for ``"thread"`` / ``"process"``; defaults to
        ``min(n_shards, cpu_count)``.

    Instances are callable with the ``(sampler, s, rng)`` signature
    :meth:`VRDAG.generate <repro.core.model.VRDAG.generate>` expects
    and return CSR-ordered ``(src, dst)`` int64 edge columns.
    """

    def __init__(
        self,
        plan: ShardPlan,
        executor: str = "serial",
        max_workers: Optional[int] = None,
    ):
        if executor not in EXECUTORS:
            raise ValueError(
                f"unknown executor {executor!r}; expected one of {EXECUTORS}"
            )
        self.plan = plan
        self.executor = executor
        self.max_workers = max_workers
        self._pool = None

    # ------------------------------------------------------------------
    # pool lifecycle
    # ------------------------------------------------------------------
    def _workers(self) -> int:
        if self.max_workers is not None:
            return max(int(self.max_workers), 1)
        return max(min(self.plan.n_shards, os.cpu_count() or 1), 1)

    def _map(self, tasks: List[ShardTask]) -> List[Tuple[np.ndarray, np.ndarray]]:
        if self.executor == "serial":
            return [decode_shard(t) for t in tasks]
        if self.executor == "thread":
            if self._pool is None:
                from concurrent.futures import ThreadPoolExecutor

                self._pool = ThreadPoolExecutor(
                    max_workers=self._workers(),
                    thread_name_prefix="shard-decode",
                )
            return list(self._pool.map(decode_shard, tasks))
        if self._pool is None:
            import multiprocessing as mp

            method = (
                "fork" if "fork" in mp.get_all_start_methods() else "spawn"
            )
            self._pool = mp.get_context(method).Pool(
                processes=self._workers()
            )
        return self._pool.map(decode_shard, tasks)

    def close(self) -> None:
        """Shut down the worker pool (no-op for ``serial``)."""
        pool, self._pool = self._pool, None
        if pool is None:
            return
        if hasattr(pool, "shutdown"):  # ThreadPoolExecutor
            pool.shutdown(wait=True)
        else:  # multiprocessing.Pool
            pool.close()
            pool.join()

    def __enter__(self) -> "ShardedStructureDecoder":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    # the decode hook
    # ------------------------------------------------------------------
    def __call__(
        self,
        sampler: MixBernoulliSampler,
        s,
        rng: np.random.Generator,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Decode one timestep's structure across the plan's shards."""
        if not isinstance(rng.bit_generator, np.random.PCG64):
            raise TypeError(
                "sharded decoding slices a PCG64 stream; got "
                f"{type(rng.bit_generator).__name__}"
            )
        with profiler.timer("generation.sharded.prepare"):
            alpha, proj, block = prepare_decode(sampler, s)
        n = proj.shape[0]
        if n != self.plan.num_nodes:
            raise ValueError(
                f"plan covers {self.plan.num_nodes} nodes, states have {n}"
            )
        head = PlainHead.from_mlp(sampler.f_theta)
        state = rng.bit_generator.state
        tasks = [
            ShardTask(
                lo=lo,
                hi=hi,
                num_nodes=n,
                num_components=sampler.num_components,
                head=head,
                proj=proj,
                alpha=alpha[lo:hi],
                rng_state=state,
                block=block,
            )
            for lo, hi in self.plan.ranges()
        ]
        with profiler.timer("generation.sharded.decode"):
            parts = self._map(tasks)
        # the shards consumed copies of the stream; move the master past
        # the decode window so downstream draws stay monolithic-exact
        advance_past_decode(rng, n)
        with profiler.timer("generation.sharded.merge"):
            return merge_step_columns(parts)


def generate_sharded(
    model,
    num_timesteps: int,
    seed: Optional[int] = None,
    *,
    n_shards: int = 1,
    executor: str = "serial",
    max_workers: Optional[int] = None,
    plan: Optional[ShardPlan] = None,
):
    """Sharded Algorithm 1 rollout — ``VRDAG.generate`` at scale.

    Bit-identical to ``model.generate(num_timesteps, seed=seed)`` for
    every ``n_shards`` and executor (see module docstring); returns the
    same store-backed :class:`~repro.graph.dynamic.DynamicAttributedGraph`.

    Parameters
    ----------
    model:
        A :class:`~repro.core.model.VRDAG` (or any model whose
        ``generate`` accepts a ``structure_decoder`` hook).
    num_timesteps:
        Rollout length ``T``.
    seed:
        Generation seed; defaults to the model's own scheme.
    n_shards:
        Number of contiguous row shards (ignored when ``plan`` given).
    executor, max_workers:
        See :class:`ShardedStructureDecoder`.
    plan:
        Explicit :class:`ShardPlan` overriding ``n_shards``.
    """
    plan = plan or ShardPlan.balanced(model.config.num_nodes, n_shards)
    with ShardedStructureDecoder(plan, executor, max_workers) as decoder:
        return model.generate(
            num_timesteps, seed=seed, structure_decoder=decoder
        )
