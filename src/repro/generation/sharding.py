"""Shard plans and deterministic per-shard RNG stream slicing.

Sharded generation partitions the node rows of one MixBernoulli decode
into contiguous ranges.  Two ingredients make the partition invisible
to the sampled distribution:

* :class:`ShardPlan` — a balanced, contiguous partition of ``[0, N)``
  into ``n_shards`` row ranges.  Contiguity matters: each shard's edge
  output is CSR-ordered within its range, so the merged columns are in
  canonical order by construction.
* :func:`sliced_generator` — a :class:`numpy.random.Generator` whose
  stream is the master PCG64 stream *advanced to a row offset*.  The
  monolithic decode draws ``u = rng.random((N, 1))`` followed by
  ``edge_u = rng.random((N, N))``; uniform doubles consume exactly one
  64-bit PCG64 step each, so the draws belonging to rows ``[lo, hi)``
  occupy a known, contiguous window of the master stream.  A shard
  reproduces its window bit-for-bit by advancing a copy of the master
  state — **every** shard count therefore yields the same graph as the
  unsharded :meth:`repro.core.model.VRDAG.generate`, not merely the
  same distribution.  (This is strictly stronger than giving each
  shard an independent ``SeedSequence.spawn`` stream, which changes
  the realized sample whenever the shard count changes.)

After the shards finish, the coordinator calls
:func:`advance_past_decode` so the master generator lands exactly
where the monolithic decode would have left it; all non-sharded draws
(latent noise, attribute noise) continue on the master stream
unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

__all__ = [
    "ShardPlan",
    "sliced_generator",
    "advance_past_decode",
    "decode_draw_count",
]


@dataclass(frozen=True)
class ShardPlan:
    """A contiguous, balanced partition of the node rows ``[0, N)``.

    ``bounds`` has ``n_shards + 1`` non-decreasing int entries starting
    at 0 and ending at ``num_nodes``; shard ``k`` owns rows
    ``[bounds[k], bounds[k + 1])``.  Shards may be empty when
    ``n_shards > num_nodes``.
    """

    num_nodes: int
    bounds: Tuple[int, ...]

    def __post_init__(self) -> None:
        if self.num_nodes < 0:
            raise ValueError("num_nodes must be >= 0")
        b = self.bounds
        if len(b) < 2 or b[0] != 0 or b[-1] != self.num_nodes:
            raise ValueError(
                f"bounds must run 0..{self.num_nodes}, got {b}"
            )
        if any(lo > hi for lo, hi in zip(b[:-1], b[1:])):
            raise ValueError(f"bounds must be non-decreasing, got {b}")

    @classmethod
    def balanced(cls, num_nodes: int, n_shards: int) -> "ShardPlan":
        """Split ``N`` rows into ``n_shards`` ranges differing by <= 1 row."""
        if n_shards < 1:
            raise ValueError("n_shards must be >= 1")
        base, extra = divmod(int(num_nodes), n_shards)
        bounds = [0]
        for k in range(n_shards):
            bounds.append(bounds[-1] + base + (1 if k < extra else 0))
        return cls(int(num_nodes), tuple(bounds))

    @property
    def n_shards(self) -> int:
        """Number of row ranges (including empty ones)."""
        return len(self.bounds) - 1

    def ranges(self) -> List[Tuple[int, int]]:
        """Non-empty ``(lo, hi)`` row ranges in ascending order."""
        return [
            (lo, hi)
            for lo, hi in zip(self.bounds[:-1], self.bounds[1:])
            if hi > lo
        ]


def decode_draw_count(num_nodes: int) -> int:
    """Uniform doubles one MixBernoulli decode consumes: ``N + N²``.

    One component draw per row (``rng.random((N, 1))``) plus one edge
    draw per ordered pair (``rng.random((N, N))``).
    """
    return num_nodes + num_nodes * num_nodes


def sliced_generator(state: dict, offset: int) -> np.random.Generator:
    """Generator positioned ``offset`` uniform draws past ``state``.

    ``state`` is a ``bit_generator.state`` dict of the master PCG64
    stream captured immediately before the decode.  Each
    ``Generator.random`` float64 consumes exactly one PCG64 step, so
    advancing by ``offset`` positions the new generator at the master
    stream's ``offset``-th upcoming draw.
    """
    bg = np.random.PCG64()
    bg.state = state
    if offset:
        bg.advance(offset)
    return np.random.Generator(bg)


def advance_past_decode(rng: np.random.Generator, num_nodes: int) -> None:
    """Advance the master generator past one decode's worth of draws.

    Called by the coordinator after the shards have consumed their
    stream slices, so subsequent draws (attribute noise, next-step
    latents) match the monolithic path bit-for-bit.
    """
    bit_gen = rng.bit_generator
    if not isinstance(bit_gen, np.random.PCG64):
        raise TypeError(
            "sharded decoding requires a PCG64-backed Generator "
            f"(got {type(bit_gen).__name__}); numpy.random.default_rng "
            "constructs one"
        )
    bit_gen.advance(decode_draw_count(num_nodes))
